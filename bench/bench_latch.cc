// Latch microbenchmark: cas vs optiql on one hot VersionLatch.
//
// Sweeps thread count and write fraction over a single cache-line-aligned
// latch — the distilled version of a hot B+Tree leaf header — and measures
// operations per second for both lock implementations. Readers run the
// optimistic snapshot/validate protocol (restarting on interference),
// writers take the write lock and mutate a two-word payload whose invariant
// (b == a + 1) is checked on every validated read; the final counter and
// version are asserted after every cell, so a lost update or a missed
// version bump fails the binary, not just the numbers.
//
// A second table, `ring_register`, distills the OTHER CAS storm this repo
// cares about: every writer of a hot logical range fetch_add's one TxnRing
// counter and CASes a slot tag. The cell registers descriptors into a single
// ring from all threads, direct path vs combining path (DESIGN.md §15.1),
// and then replays the ground truth against the ring: every sequence must be
// unique and contiguous (one registration = one version bump), and the last
// `capacity` sequences must still resolve to the exact descriptor that
// registered them — a lost or misplaced registration fails the binary.
//
// Flags (besides the standard set in bench_common.h):
//   --ops N             lock operations per thread per cell (default 50000)
//   --sweep-threads L   comma list of thread counts (default 1,2,4,8,16,40)
//   --mixes L           comma list of write fractions (default
//                       0.01,0.10,0.90 — read-mostly / 90-10 / write-heavy)
//   --lock IMPL         restrict to one implementation (default: both)
//   --ring-ops N        registrations per thread per ring cell (default 50000)
//   --ring-cap N        slot count of the benched ring (default 4096)
//
// Threads here are real OS threads (no fiber simulation): the subject is the
// lock word itself, and oversubscribed timeslicing is exactly the regime
// where queue fairness matters. Expect optiql to shine as threads exceed
// cores on write-heavy mixes and to match cas on read-mostly ones.

#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <deque>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/txn_ring.h"
#include "sync/optiql.h"
#include "txn/txn.h"

namespace rocc {
namespace bench {
namespace {

struct CellResult {
  double seconds = 0;
  uint64_t writes = 0;
  uint64_t reads_validated = 0;
  uint64_t read_restarts = 0;
  bool invariant_ok = true;
};

/// One measured cell: `threads` workers each performing `ops` operations
/// against one shared latch at the given write fraction.
CellResult RunCell(sync::LockImpl impl, uint32_t threads, uint64_t ops,
                   double write_frac) {
  sync::SetLockImpl(impl);
  struct alignas(kCacheLineSize) Shared {
    sync::VersionLatch latch;
  } shared;
  // Payload guarded by the latch; atomic words keep unvalidated optimistic
  // reads benign (same contract as the row seqlock, but TSan-clean).
  struct alignas(kCacheLineSize) Payload {
    std::atomic<uint64_t> a{0};
    std::atomic<uint64_t> b{1};
  } payload;

  std::atomic<uint32_t> ready{0};
  std::atomic<bool> go{false};
  std::vector<uint64_t> writes(threads, 0);
  std::vector<uint64_t> reads(threads, 0);
  std::vector<uint64_t> restarts(threads, 0);
  std::vector<bool> torn(threads, false);

  const uint64_t write_threshold =
      static_cast<uint64_t>(write_frac * 4294967296.0);

  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (uint32_t t = 0; t < threads; t++) {
    workers.emplace_back([&, t] {
      Rng rng(0x9e3779b97f4a7c15ULL * (t + 1) + 1);
      ready.fetch_add(1, std::memory_order_acq_rel);
      while (!go.load(std::memory_order_acquire)) CpuRelax();
      for (uint64_t i = 0; i < ops; i++) {
        if ((rng.Next() & 0xffffffffu) < write_threshold) {
          sync::VersionLatch::Guard g;
          shared.latch.WriteLock(g);
          const uint64_t a = payload.a.load(std::memory_order_relaxed) + 1;
          payload.a.store(a, std::memory_order_relaxed);
          payload.b.store(a + 1, std::memory_order_relaxed);
          shared.latch.WriteUnlock(g);
          writes[t]++;
        } else {
          for (;;) {
            const uint64_t v = shared.latch.ReadLockOrRestart();
            const uint64_t sa = payload.a.load(std::memory_order_relaxed);
            const uint64_t sb = payload.b.load(std::memory_order_relaxed);
            if (shared.latch.CheckOrRestart(v)) {
              if (sb != sa + 1) torn[t] = true;
              reads[t]++;
              break;
            }
            restarts[t]++;
          }
        }
      }
    });
  }

  while (ready.load(std::memory_order_acquire) < threads) CpuRelax();
  Stopwatch watch;
  go.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();
  CellResult r;
  r.seconds = watch.ElapsedSeconds();

  for (uint32_t t = 0; t < threads; t++) {
    r.writes += writes[t];
    r.reads_validated += reads[t];
    r.read_restarts += restarts[t];
    if (torn[t]) r.invariant_ok = false;
  }
  // Lost-update / version-bump invariants: every write advanced the counter
  // and the version by exactly one step.
  if (payload.a.load(std::memory_order_relaxed) != r.writes) {
    r.invariant_ok = false;
  }
  if (shared.latch.ReadLockOrRestart() != 2 * r.writes) r.invariant_ok = false;
  return r;
}

struct RingCellResult {
  double seconds = 0;
  bool invariant_ok = true;
};

/// One ring cell: `threads` workers each register `ops` descriptors into one
/// shared TxnRing, direct (per-registrant CAS) or combining (queue head
/// publishes the batch). Invariants checked against the recorded ground
/// truth after the run; see the file comment.
RingCellResult RunRingCell(bool combining, uint32_t threads, uint64_t ops,
                           uint32_t ring_cap) {
  // The combining queue rides the OptiQL qnode pool; the direct path is the
  // lock-free CAS protocol regardless of lock impl. Pin the matching impl so
  // each arm is the configuration a real run would pair it with.
  sync::SetLockImpl(combining ? sync::LockImpl::kOptiql : sync::LockImpl::kCas);
  TxnRing ring(ring_cap);
  ring.SetCombining(combining);

  // Stable descriptor identities so slot contents can be replayed after the
  // run (TxnDescriptor holds atomics — deque keeps addresses fixed).
  std::deque<TxnDescriptor> descs(threads);
  std::vector<std::vector<uint64_t>> seqs(threads);

  std::atomic<uint32_t> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (uint32_t t = 0; t < threads; t++) {
    workers.emplace_back([&, t] {
      seqs[t].reserve(ops);
      ready.fetch_add(1, std::memory_order_acq_rel);
      while (!go.load(std::memory_order_acquire)) CpuRelax();
      for (uint64_t i = 0; i < ops; i++) {
        seqs[t].push_back(ring.Register(&descs[t]));
      }
    });
  }

  while (ready.load(std::memory_order_acquire) < threads) CpuRelax();
  Stopwatch watch;
  go.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();
  RingCellResult r;
  r.seconds = watch.ElapsedSeconds();

  // One registration = one version bump, no sequence lost or duplicated:
  // the recorded sequences must be a permutation of 1..threads*ops.
  const uint64_t total = static_cast<uint64_t>(threads) * ops;
  if (ring.Version() != total) r.invariant_ok = false;
  std::vector<uint32_t> owner(total + 1, UINT32_MAX);
  for (uint32_t t = 0; t < threads && r.invariant_ok; t++) {
    uint64_t prev = 0;
    for (uint64_t s : seqs[t]) {
      if (s == 0 || s > total || owner[s] != UINT32_MAX) {
        r.invariant_ok = false;
        break;
      }
      // Registrations of one thread are issued in program order, so their
      // sequences must be strictly increasing even through a combiner.
      if (s <= prev) {
        r.invariant_ok = false;
        break;
      }
      prev = s;
      owner[s] = t;
    }
  }
  // The newest `capacity` sequences were published last into their slots and
  // must still resolve to the registering descriptor.
  if (r.invariant_ok) {
    const uint64_t lo = total > ring_cap ? total - ring_cap + 1 : 1;
    for (uint64_t s = lo; s <= total; s++) {
      if (ring.Get(s) != &descs[owner[s]]) {
        r.invariant_ok = false;
        break;
      }
    }
  }
  return r;
}

int Main(int argc, char** argv) {
  BenchEnv env = ParseEnv(argc, argv);
  const uint64_t ops = static_cast<uint64_t>(env.cfg.GetInt("ops", 50000));
  const std::vector<int64_t> thread_list =
      env.cfg.GetIntList("sweep-threads", {1, 2, 4, 8, 16, 40});
  const std::vector<double> mixes =
      env.cfg.GetDoubleList("mixes", {0.01, 0.10, 0.90});
  const std::string only = env.cfg.GetString("lock", "");

  std::vector<sync::LockImpl> impls;
  if (only.empty() || only == "cas") impls.push_back(sync::LockImpl::kCas);
  if (only.empty() || only == "optiql") {
    impls.push_back(sync::LockImpl::kOptiql);
  }

  PrintBanner("Latch microbenchmark: cas vs optiql on one hot VersionLatch",
              "ops/thread=" + std::to_string(ops) + " " + env.Describe());

  ReportTable table({"impl", "mix", "threads", "mops_per_sec", "writes",
                     "reads_validated", "read_restarts",
                     "restarts_per_read"});
  bool ok = true;
  for (double mix : mixes) {
    for (int64_t threads : thread_list) {
      if (threads <= 0) continue;
      for (sync::LockImpl impl : impls) {
        const CellResult r =
            RunCell(impl, static_cast<uint32_t>(threads), ops, mix);
        if (!r.invariant_ok) {
          ok = false;
          std::fprintf(stderr,
                       "ERROR: invariant violated (impl=%s mix=%.2f "
                       "threads=%" PRId64 ")\n",
                       sync::LockImplName(impl), mix, threads);
        }
        const double total_ops =
            static_cast<double>(ops) * static_cast<double>(threads);
        table.AddRow({sync::LockImplName(impl), F(mix), F(uint64_t(threads)),
                      F(r.seconds > 0 ? total_ops / r.seconds / 1e6 : 0, 3),
                      F(r.writes), F(r.reads_validated), F(r.read_restarts),
                      F(r.reads_validated > 0
                            ? static_cast<double>(r.read_restarts) /
                                  static_cast<double>(r.reads_validated)
                            : 0,
                        4)});
      }
    }
  }
  Emit(env, table, "latch_sweep");

  // Ring-registration storm: one shared TxnRing, direct vs combining.
  const uint64_t ring_ops =
      static_cast<uint64_t>(env.cfg.GetInt("ring-ops", 50000));
  const uint32_t ring_cap =
      static_cast<uint32_t>(env.cfg.GetInt("ring-cap", 4096));
  ReportTable ring_table(
      {"mode", "threads", "mregs_per_sec", "registrations"});
  for (int64_t threads : thread_list) {
    if (threads <= 0) continue;
    for (bool combining : {false, true}) {
      const RingCellResult r = RunRingCell(
          combining, static_cast<uint32_t>(threads), ring_ops, ring_cap);
      if (!r.invariant_ok) {
        ok = false;
        std::fprintf(stderr,
                     "ERROR: ring registration invariant violated "
                     "(mode=%s threads=%" PRId64 ")\n",
                     combining ? "combining" : "direct", threads);
      }
      const double total =
          static_cast<double>(ring_ops) * static_cast<double>(threads);
      ring_table.AddRow({combining ? "combining" : "direct",
                         F(uint64_t(threads)),
                         F(r.seconds > 0 ? total / r.seconds / 1e6 : 0, 3),
                         F(uint64_t(total))});
    }
  }
  Emit(env, ring_table, "ring_register");
  sync::SetLockImpl(sync::LockImpl::kCas);
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace rocc

int main(int argc, char** argv) { return rocc::bench::Main(argc, argv); }
