// Fig. 10 + Table II — Scan throughput of RV under various partitioning
// granularity: (a) across scan lengths (100 / 300 / 1000 keys), (b) across
// workload skews (scan length 100).
//
// Paper setup (Table II): 10M keys partitioned into {1, 16, 4096, 16384,
// 262144} ranges (range sizes 1e7 / 6e5 / 2.4e3 / 610 / 38). The quick scale
// keeps the same RANGE SIZES over a smaller table. Expected shape:
// throughput improves up to ~16384 ranges (610-key ranges); beyond that it
// plateaus for short scans and DROPS ~30% for 1000-key scans (predicate
// maintenance overhead); under high skew granularity stops mattering.

#include <algorithm>
#include <vector>

#include "bench_common.h"

using namespace rocc;        // NOLINT
using namespace rocc::bench; // NOLINT

namespace {

// Range counts reproducing Table II's range sizes on any table size.
std::vector<uint32_t> RangeCounts(uint64_t rows) {
  const uint64_t sizes[] = {rows, 600'000, 2'400, 610, 38};
  std::vector<uint32_t> counts;
  for (uint64_t size : sizes) {
    if (size > rows) size = rows;
    uint32_t n = static_cast<uint32_t>(rows / size);
    if (n == 0) n = 1;
    if (counts.empty() || counts.back() != n) counts.push_back(n);
  }
  return counts;
}

}  // namespace

int main(int argc, char** argv) {
  BenchEnv env = ParseEnv(argc, argv);
  PrintBanner("Fig. 10 / Table II: RV scan throughput vs partitioning granularity",
              env.Describe());

  YcsbOptions opts;
  opts.theta = 0.7;
  YcsbBench bench(env, opts);
  const auto counts = RangeCounts(env.rows);

  std::printf("(a) varying scan length, low skew\n");
  ReportTable ta({"num_ranges", "range_size", "scan_len", "scan_tps",
                  "val_txns_per_scan"});
  for (int64_t scan_len : env.cfg.GetIntList("scan_lens", {100, 300, 1000})) {
    YcsbOptions cur = bench.options();
    cur.scan_length = static_cast<uint64_t>(scan_len);
    bench.Reconfigure(cur);
    for (uint32_t n : counts) {
      // Bound total ring memory (the paper's 5000-slot arrays at 262144
      // ranges would need tens of GB); validators abort conservatively if a
      // ring ever wraps, so this is safe.
      const uint32_t ring = std::clamp<uint32_t>((1u << 24) / n, 64, 4096);
      const RunResult r = bench.Run("rocc", n, ring);
      ta.AddRow({F(static_cast<uint64_t>(n)), F(env.rows / n),
                 F(static_cast<uint64_t>(scan_len)), F(r.ScanThroughput(), 1),
                 F(r.ValidatedTxnsPerScan(), 2)});
    }
  }
  Emit(env, ta);

  std::printf("\n(b) varying workload skew, scan length 100\n");
  ReportTable tb({"num_ranges", "skew_theta", "scan_tps", "scan_abort_rate"});
  for (double theta : env.cfg.GetDoubleList("thetas", {0.0, 0.7, 0.88, 1.04})) {
    YcsbOptions cur = bench.options();
    cur.theta = theta;
    cur.scan_length = 100;
    bench.Reconfigure(cur);
    for (uint32_t n : counts) {
      const uint32_t ring = std::clamp<uint32_t>((1u << 24) / n, 64, 4096);
      const RunResult r = bench.Run("rocc", n, ring);
      tb.AddRow({F(static_cast<uint64_t>(n)), F(theta, 2),
                 F(r.ScanThroughput(), 1), F(r.stats.ScanAbortRate(), 4)});
    }
  }
  Emit(env, tb);
  return 0;
}
