// Fig. 12 — Registration overhead on a scan-free write-intensive workload
// (YCSB-A: 50/50 read/write, 5 ops per transaction, no scans): ROCC with
// registration vs ROCC with registration turned off, (a) across partitioning
// granularity and (b) across workload skew. TPS is normalised to the
// no-registration run.
//
// Expected shape: overhead below ~10% at no/low skew and across
// granularities (growing slightly with finer partitions); 18-21% at
// medium/high skew where many transactions compete to register into a few
// hot ranges.

#include "bench_common.h"

using namespace rocc;        // NOLINT
using namespace rocc::bench; // NOLINT

int main(int argc, char** argv) {
  BenchEnv env = ParseEnv(argc, argv);
  PrintBanner("Fig. 12: ROCC registration overhead on scan-free YCSB-A",
              env.Describe());

  YcsbOptions opts;
  opts.scan_txn_fraction = 0.0;
  opts.read_fraction = 0.5;
  opts.theta = 0.7;
  YcsbBench bench(env, opts);
  const uint32_t default_ranges = bench.workload().DefaultNumRanges();

  std::printf("(a) varying partitioning granularity, low skew\n");
  ReportTable ta({"num_ranges", "tps_registration", "tps_no_registration",
                  "normalized_tps", "registrations"});
  for (uint32_t n :
       {1u, 16u, std::max(1u, default_ranges / 4), default_ranges,
        default_ranges * 4}) {
    const RunResult off = bench.Run("rocc", n, 4096, /*register_writes=*/false);
    const RunResult on = bench.Run("rocc", n, 4096, /*register_writes=*/true);
    ta.AddRow({F(static_cast<uint64_t>(n)), F(on.Throughput(), 1),
               F(off.Throughput(), 1),
               F(off.Throughput() > 0 ? on.Throughput() / off.Throughput() : 0, 3),
               F(on.stats.registrations)});
  }
  Emit(env, ta);

  std::printf("\n(b) varying workload skew, default granularity\n");
  ReportTable tb({"skew_theta", "tps_registration", "tps_no_registration",
                  "normalized_tps"});
  for (double theta : env.cfg.GetDoubleList("thetas", {0.0, 0.7, 0.88, 1.04})) {
    YcsbOptions cur = bench.options();
    cur.theta = theta;
    bench.Reconfigure(cur);
    const RunResult off = bench.Run("rocc", 0, 4096, /*register_writes=*/false);
    const RunResult on = bench.Run("rocc", 0, 4096, /*register_writes=*/true);
    tb.AddRow({F(theta, 2), F(on.Throughput(), 1), F(off.Throughput(), 1),
               F(off.Throughput() > 0 ? on.Throughput() / off.Throughput() : 0, 3)});
  }
  Emit(env, tb);
  return 0;
}
