#pragma once

// Shared scaffolding for the per-figure benchmark binaries.
//
// Every binary accepts:
//   --paper           use the paper's full-scale parameters (10M-row YCSB,
//                     100k transactions, 40 threads); default is a quick
//                     scale sized for a laptop/CI container
//   --threads N       worker threads
//   --rows N          YCSB table size
//   --txns N          measured transactions per thread
//   --warmup N        warmup transactions per thread
//   --csv             additionally print CSV blocks
//
// Quick-scale defaults keep every range-size/scan-length RATIO of the paper
// intact (e.g. 610-key logical ranges), so curve shapes are comparable even
// though absolute throughput is not.

#include <cstdint>
#include <memory>
#include <string>

#include "common/config.h"
#include "harness/report.h"
#include "harness/runner.h"
#include "workload/tpcc/tpcc.h"
#include "workload/ycsb.h"

namespace rocc {
namespace bench {

struct BenchEnv {
  Config cfg;
  bool paper = false;
  bool csv = false;
  // Quick scale keeps the paper's 40 workers (cheap under the fiber runner)
  // but shrinks the table and transaction counts.
  uint32_t threads = 40;
  uint64_t rows = 1'000'000;
  uint64_t txns_per_thread = 400;
  uint64_t warmup = 50;

  std::string Describe() const {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "scale=%s threads=%u rows=%llu txns/thread=%llu",
                  paper ? "paper" : "quick", threads,
                  static_cast<unsigned long long>(rows),
                  static_cast<unsigned long long>(txns_per_thread));
    return buf;
  }
};

inline BenchEnv ParseEnv(int argc, char** argv) {
  BenchEnv env;
  env.cfg = Config(argc, argv);
  env.paper = env.cfg.GetBool("paper", false);
  if (env.paper) {
    env.threads = 40;
    env.rows = 10'000'000;
    env.txns_per_thread = 2500;  // 100k total at 40 threads, per paper
    env.warmup = 250;
  }
  env.threads = static_cast<uint32_t>(env.cfg.GetInt("threads", env.threads));
  env.rows = static_cast<uint64_t>(env.cfg.GetInt("rows", env.rows));
  env.txns_per_thread =
      static_cast<uint64_t>(env.cfg.GetInt("txns", env.txns_per_thread));
  env.warmup = static_cast<uint64_t>(env.cfg.GetInt("warmup", env.warmup));
  env.csv = env.cfg.GetBool("csv", false);
  return env;
}

/// One YCSB measurement: loads (or reuses) the table and runs the protocol.
///
/// The YCSB hybrid workload never inserts or deletes, so one loaded Database
/// can be reused across protocol runs within a binary; pass a fresh one per
/// binary invocation.
class YcsbBench {
 public:
  YcsbBench(const BenchEnv& env, YcsbOptions opts) : env_(env), opts_(opts) {
    opts_.num_rows = env.rows;
    workload_ = std::make_unique<YcsbWorkload>(opts_);
    workload_->Load(&db_);
  }

  /// Re-parameterise the generator without reloading data (same row count).
  void Reconfigure(const YcsbOptions& opts) {
    YcsbOptions next = opts;
    next.num_rows = opts_.num_rows;
    next.payload_size = opts_.payload_size;
    const uint32_t table = workload_->table_id();
    opts_ = next;
    workload_ = std::make_unique<YcsbWorkload>(opts_);
    workload_->SetLoadedTable(table);
  }

  RunResult Run(const std::string& proto, uint32_t ranges_hint = 0,
                uint32_t ring_capacity = 4096, bool register_writes = true,
                uint32_t threads_override = 0) {
    auto cc = CreateProtocol(proto, &db_, *workload_,
                             threads_override == 0 ? env_.threads : threads_override,
                             ranges_hint, ring_capacity, register_writes);
    return RunWith(std::move(cc), threads_override);
  }

  /// Run a caller-built protocol instance (custom options / ablations).
  RunResult RunWith(std::unique_ptr<ConcurrencyControl> cc,
                    uint32_t threads_override = 0) {
    RunOptions run;
    run.num_threads = threads_override == 0 ? env_.threads : threads_override;
    run.txns_per_thread = env_.txns_per_thread;
    run.warmup_txns_per_thread = env_.warmup;
    return RunExperiment(cc.get(), workload_.get(), run);
  }

  YcsbWorkload& workload() { return *workload_; }
  const YcsbOptions& options() const { return opts_; }
  Database* db() { return &db_; }

 private:
  BenchEnv env_;
  YcsbOptions opts_;
  Database db_;
  std::unique_ptr<YcsbWorkload> workload_;
};

/// One modified-TPC-C measurement; reloads the database per run so every
/// protocol starts from identical state.
inline RunResult RunTpcc(const BenchEnv& env, const TpccOptions& opts,
                         const std::string& proto, uint32_t threads,
                         uint32_t ranges_hint = 0, uint32_t ring_capacity = 4096) {
  Database db;
  TpccWorkload workload(opts);
  workload.Load(&db);
  auto cc = CreateProtocol(proto, &db, workload, threads, ranges_hint,
                           ring_capacity);
  RunOptions run;
  run.num_threads = threads;
  run.txns_per_thread = env.txns_per_thread;
  run.warmup_txns_per_thread = env.warmup;
  return RunExperiment(cc.get(), &workload, run);
}

inline std::string F(double v, int p = 2) { return ReportTable::Fmt(v, p); }
inline std::string F(uint64_t v) { return ReportTable::Fmt(v); }

}  // namespace bench
}  // namespace rocc
