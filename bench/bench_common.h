#pragma once

// Shared scaffolding for the per-figure benchmark binaries.
//
// Every binary accepts:
//   --paper           use the paper's full-scale parameters (10M-row YCSB,
//                     100k transactions, 40 threads); default is a quick
//                     scale sized for a laptop/CI container
//   --threads N       worker threads
//   --rows N          YCSB table size
//   --txns N          measured transactions per thread
//   --warmup N        warmup transactions per thread
//   --csv [file]      additionally print CSV blocks; with a path, also
//                     append them to that file
//   --json FILE       machine-readable report: every emitted table is added
//                     to FILE (rewritten after each table, so the file is
//                     valid JSON even mid-sweep)
//   --log-dir D       enable durability: group-commit WAL under D (one
//                     subdirectory per measured run)
//   --group-commit-us N   flusher batching interval (default 200)
//   --no-durability   with --log-dir: append records but acknowledge
//                     commits from memory (no fsync wait)
//   --obs             enable the flight recorder (phase histograms + trace
//                     rings); implied by --trace / --prom
//   --obs-sample N    trace 1 in N transaction attempts (default 64; 1 =
//                     every txn)
//   --obs-ring N      events per worker trace ring (default 8192)
//   --trace FILE      dump the trace rings as Chrome trace-event JSON to
//                     FILE at exit (open in ui.perfetto.dev); SIGUSR1 dumps
//                     mid-run
//   --prom FILE       write a Prometheus text snapshot of the merged run
//                     stats to FILE (rewritten after every measured run)
//   --prom-stream-ms N    with --prom: additionally stream the trace rings
//                     to FILE every N ms while the run is in progress
//                     (WAL/range/version-GC counters derived incrementally
//                     from the rings; implies --obs)
//   --lock IMPL       lock implementation for the B+Tree version latch and
//                     the row TID-word acquire: "cas" (plain CAS loops, the
//                     default) or "optiql" (MCS queue locks with optimistic
//                     reads, DESIGN.md §13)
//   --http-port N     serve the live observability plane on 127.0.0.1:N
//                     (GET /metrics /vars /healthz /trace?ms=N /config,
//                     POST /config); implies --obs. 0 (default) = off: no
//                     socket, no thread
//   --obs-slo-us N    tail-latency SLO in microseconds: attempts slower
//                     than this are force-captured into the trace rings
//                     even when unsampled, and attributed to their slowest
//                     phase (rocc_slo_violations_total); implies --obs
//   --watchdog-ms N   start the stall watchdog: workers parked in one
//                     phase longer than N ms are reported as kStall
//                     events; implies --obs. The watchdog thread also
//                     applies SIGHUP knob reloads and SIGUSR1 trace dumps
//   --knob-file F     apply "name=value" knob overrides from F at startup
//                     and re-apply on SIGHUP (drained by the watchdog)
//
// Quick-scale defaults keep every range-size/scan-length RATIO of the paper
// intact (e.g. 610-key logical ranges), so curve shapes are comparable even
// though absolute throughput is not.

#include <sys/stat.h>

#include <algorithm>
#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>

#include <functional>
#include <mutex>
#include <vector>

#include "common/config.h"
#include "core/rocc.h"
#include "harness/knobs.h"
#include "harness/report.h"
#include "harness/runner.h"
#include "log/log_manager.h"
#include "obs/chrome_trace.h"
#include "obs/http_server.h"
#include "obs/obs.h"
#include "obs/prometheus.h"
#include "obs/watchdog.h"
#include "workload/tpcc/tpcc.h"
#include "workload/ycsb.h"

namespace rocc {
namespace bench {

struct BenchEnv {
  Config cfg;
  bool paper = false;
  bool csv = false;
  std::string csv_file;   // --csv <path>: CSV blocks are also appended here
  std::string json_file;  // --json <path>: JSON report rewritten per table
  std::string binary;     // argv[0] basename, stamped into the JSON report
  std::string log_dir;   // --log-dir: durability on, WALs under this dir
  uint32_t group_commit_us = 200;
  bool no_durability = false;  // --no-durability: async log, no ack wait
  bool obs = false;            // --obs: flight recorder installed
  uint32_t obs_sample = 64;    // --obs-sample: trace 1 in N txn attempts
  uint32_t obs_ring = 1u << 13;  // --obs-ring: events per worker ring
  std::string trace_file;      // --trace: Chrome trace JSON dumped at exit
  std::string prom_file;       // --prom: Prometheus snapshot per run
  uint32_t prom_stream_ms = 0;  // --prom-stream-ms: live streaming period
  uint16_t http_port = 0;      // --http-port: observability plane (0 = off)
  uint32_t obs_slo_us = 0;     // --obs-slo-us: tail-latency capture threshold
  uint32_t watchdog_ms = 0;    // --watchdog-ms: stall threshold (0 = off)
  std::string knob_file;       // --knob-file: startup + SIGHUP knob overrides
  // Quick scale keeps the paper's 40 workers (cheap under the fiber runner)
  // but shrinks the table and transaction counts.
  uint32_t threads = 40;
  uint64_t rows = 1'000'000;
  uint64_t txns_per_thread = 400;
  uint64_t warmup = 50;

  std::string Describe() const {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "scale=%s threads=%u rows=%llu txns/thread=%llu",
                  paper ? "paper" : "quick", threads,
                  static_cast<unsigned long long>(rows),
                  static_cast<unsigned long long>(txns_per_thread));
    return buf;
  }
};

/// Live Prometheus streamer installed by ParseEnv when --prom-stream-ms is
/// set (null otherwise); EmitProm feeds it the accumulated run stats so every
/// rewrite embeds them next to the stream-derived counters.
inline obs::PrometheusStreamer*& PromStreamer() {
  static obs::PrometheusStreamer* streamer = nullptr;
  return streamer;
}

/// Stall watchdog started by ParseEnv when --watchdog-ms is set (null
/// otherwise); /vars reads its counter.
inline obs::StallWatchdog*& BenchWatchdog() {
  static obs::StallWatchdog* watchdog = nullptr;
  return watchdog;
}

/// Observability HTTP server started by ParseEnv when --http-port is set.
inline obs::HttpServer*& BenchHttpServer() {
  static obs::HttpServer* server = nullptr;
  return server;
}

// --- live per-range telemetry source for /vars -----------------------------
//
// The protocol instance only exists while a measurement is set up, so the
// bench scaffolding publishes a closure over it for the duration of each run
// (LiveRangeScope below) and the /vars handler calls through it. The mutex
// guards the closure swap against a concurrent scrape.

inline std::mutex& LiveRangeMutex() {
  static std::mutex mu;
  return mu;
}

inline std::function<std::vector<RangeTelemetry>(size_t)>& LiveRangeFn() {
  static std::function<std::vector<RangeTelemetry>(size_t)> fn;
  return fn;
}

inline std::vector<RangeTelemetry> CollectLiveRanges(size_t top_n) {
  std::lock_guard<std::mutex> g(LiveRangeMutex());
  if (!LiveRangeFn()) return {};
  return LiveRangeFn()(top_n);
}

/// Publishes the protocol's range telemetry for the scope of one run when
/// the protocol is ROCC-family (Rocc or Mvrcc); a no-op for the others.
class LiveRangeScope {
 public:
  explicit LiveRangeScope(ConcurrencyControl* cc) {
    Rocc* rocc = dynamic_cast<Rocc*>(cc);
    if (rocc == nullptr) return;
    std::lock_guard<std::mutex> g(LiveRangeMutex());
    LiveRangeFn() = [rocc](size_t top_n) {
      return rocc->LiveRangeTelemetry(top_n);
    };
  }
  ~LiveRangeScope() {
    std::lock_guard<std::mutex> g(LiveRangeMutex());
    LiveRangeFn() = nullptr;
  }
};

namespace detail {
inline void VarsAppendf(std::string* out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));
inline void VarsAppendf(std::string* out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  if (n > 0) out->append(buf, std::min<size_t>(static_cast<size_t>(n), sizeof(buf) - 1));
}
}  // namespace detail

/// The GET /vars document: merged live run counters, SLO attribution, stall
/// count, every knob's current value, and the per-range contention heatmap
/// (range_id × AbortReason) of the running protocol.
inline std::string BuildVarsJson(const std::string& binary) {
  using detail::VarsAppendf;
  using ull = unsigned long long;
  const TxnStats s = CollectLiveStats();
  std::string out;
  out.reserve(4096);
  VarsAppendf(&out, "{\"binary\":\"%s\",\"live_run\":%s", binary.c_str(),
              LiveRunActive() ? "true" : "false");
  VarsAppendf(&out,
              ",\"commits\":%llu,\"aborts\":%llu,\"abort_rate\":%.6f,"
              "\"scan_commits\":%llu,\"scan_aborts\":%llu,\"give_ups\":%llu,"
              "\"escalations\":%llu,\"durable_acks\":%llu",
              static_cast<ull>(s.commits), static_cast<ull>(s.aborts),
              s.AbortRate(), static_cast<ull>(s.scan_txn_commits),
              static_cast<ull>(s.scan_txn_aborts), static_cast<ull>(s.give_ups),
              static_cast<ull>(s.escalations), static_cast<ull>(s.durable_acks));
  out += ",\"aborts_by_reason\":{";
  for (size_t c = 0; c < kNumAbortCauses; c++) {
    VarsAppendf(&out, "%s\"%s\":%llu", c == 0 ? "" : ",",
                AbortReasonName(kAbortCauses[c]),
                static_cast<ull>(AbortCauseCount(s, kAbortCauses[c])));
  }
  out += "}";
  VarsAppendf(&out, ",\"slo_violations\":%llu,\"slo_by_slowest_phase\":{",
              static_cast<ull>(s.SloViolationTotal()));
  for (uint32_t p = 0; p < TxnStats::kNumSloPhases; p++) {
    uint64_t row = 0;
    for (uint32_t c = 0; c <= kNumAbortCauses; c++) row += s.slo_violations[p][c];
    VarsAppendf(&out, "%s\"%s\":%llu", p == 0 ? "" : ",",
                obs::PhaseName(static_cast<obs::Phase>(p)),
                static_cast<ull>(row));
  }
  out += "}";
  VarsAppendf(&out, ",\"stalls\":%llu",
              static_cast<ull>(BenchWatchdog() != nullptr
                                   ? BenchWatchdog()->stalls_detected()
                                   : 0));
  out += ",\"knobs\":{";
  {
    bool first = true;
    for (const auto& kv : KnobRegistry::Instance().Snapshot()) {
      VarsAppendf(&out, "%s\"%s\":%llu", first ? "" : ",", kv.first.c_str(),
                  static_cast<ull>(kv.second));
      first = false;
    }
  }
  out += "},\"tables\":[";
  const std::vector<RangeTelemetry> tables = CollectLiveRanges(16);
  for (size_t ti = 0; ti < tables.size(); ti++) {
    const RangeTelemetry& t = tables[ti];
    VarsAppendf(&out,
                "%s{\"table_version\":%llu,\"num_ranges\":%u,\"splits\":%llu,"
                "\"merges\":%llu,\"resizes\":%llu,\"registrations\":%llu,"
                "\"ranges\":[",
                ti == 0 ? "" : ",", static_cast<ull>(t.table_version),
                t.num_ranges, static_cast<ull>(t.splits),
                static_cast<ull>(t.merges), static_cast<ull>(t.resizes),
                static_cast<ull>(t.total_registrations));
    for (size_t ri = 0; ri < t.rows.size(); ri++) {
      const RangeTelemetry::Row& r = t.rows[ri];
      VarsAppendf(&out,
                  "%s{\"range_id\":%u,\"start_key\":%llu,\"end_key\":%llu,"
                  "\"registrations\":%llu,\"ring_lost\":%llu,"
                  "\"scan_conflict\":%llu,\"ring_capacity\":%u,"
                  "\"ring_high_water\":%llu,\"ring_resizes\":%llu,"
                  "\"aborts_by_reason\":{",
                  ri == 0 ? "" : ",", r.range_id,
                  static_cast<ull>(r.start_key), static_cast<ull>(r.end_key),
                  static_cast<ull>(r.registrations),
                  static_cast<ull>(r.ring_lost),
                  static_cast<ull>(r.scan_conflict), r.ring_capacity,
                  static_cast<ull>(r.ring_high_water),
                  static_cast<ull>(r.ring_resizes));
      // Heatmap row, nonzero cells only, to bound the document size.
      bool first = true;
      for (size_t c = 0; c < kNumAbortCauses; c++) {
        if (r.abort_by_reason[c] == 0) continue;
        VarsAppendf(&out, "%s\"%s\":%llu", first ? "" : ",",
                    AbortReasonName(kAbortCauses[c]),
                    static_cast<ull>(r.abort_by_reason[c]));
        first = false;
      }
      out += "}}";
    }
    out += "]}";
  }
  out += "]}\n";
  return out;
}

inline BenchEnv ParseEnv(int argc, char** argv) {
  BenchEnv env;
  env.cfg = Config(argc, argv);
  if (argc > 0 && argv[0] != nullptr) {
    const std::string path = argv[0];
    const size_t slash = path.find_last_of('/');
    env.binary = slash == std::string::npos ? path : path.substr(slash + 1);
  }
  env.paper = env.cfg.GetBool("paper", false);
  if (env.paper) {
    env.threads = 40;
    env.rows = 10'000'000;
    env.txns_per_thread = 2500;  // 100k total at 40 threads, per paper
    env.warmup = 250;
  }
  env.threads = static_cast<uint32_t>(env.cfg.GetInt("threads", env.threads));
  env.rows = static_cast<uint64_t>(env.cfg.GetInt("rows", env.rows));
  env.txns_per_thread =
      static_cast<uint64_t>(env.cfg.GetInt("txns", env.txns_per_thread));
  env.warmup = static_cast<uint64_t>(env.cfg.GetInt("warmup", env.warmup));
  env.csv = env.cfg.Has("csv");
  const std::string csv_value = env.cfg.GetString("csv", "");
  if (!csv_value.empty() && csv_value != "true" && csv_value != "1" &&
      csv_value != "yes") {
    env.csv_file = csv_value;
  }
  env.json_file = env.cfg.GetString("json", "");
  env.log_dir = env.cfg.GetString("log-dir", "");
  env.group_commit_us =
      static_cast<uint32_t>(env.cfg.GetInt("group-commit-us", env.group_commit_us));
  env.no_durability = env.cfg.GetBool("no-durability", false);
  env.trace_file = env.cfg.GetString("trace", "");
  env.prom_file = env.cfg.GetString("prom", "");
  env.prom_stream_ms =
      static_cast<uint32_t>(env.cfg.GetInt("prom-stream-ms", 0));
  env.http_port = static_cast<uint16_t>(env.cfg.GetInt("http-port", 0));
  env.obs_slo_us = static_cast<uint32_t>(env.cfg.GetInt("obs-slo-us", 0));
  env.watchdog_ms = static_cast<uint32_t>(env.cfg.GetInt("watchdog-ms", 0));
  env.knob_file = env.cfg.GetString("knob-file", "");
  env.obs = env.cfg.GetBool("obs", false) || !env.trace_file.empty() ||
            !env.prom_file.empty() || env.prom_stream_ms > 0 ||
            env.http_port != 0 || env.obs_slo_us > 0 || env.watchdog_ms > 0;
  env.obs_sample =
      static_cast<uint32_t>(env.cfg.GetInt("obs-sample", env.obs_sample));
  env.obs_ring = static_cast<uint32_t>(env.cfg.GetInt("obs-ring", env.obs_ring));
  const std::string lock_name = env.cfg.GetString("lock", "");
  if (!lock_name.empty()) {
    sync::LockImpl impl;
    if (sync::ParseLockImpl(lock_name, &impl)) {
      sync::SetLockImpl(impl);  // before any worker or latch exists
    } else {
      std::fprintf(stderr, "warning: unknown --lock '%s' (want cas|optiql)\n",
                   lock_name.c_str());
    }
  }

  if (env.obs) {
    obs::ObsOptions oo;
    oo.sample_period = env.obs_sample;
    oo.ring_capacity = env.obs_ring;
    oo.slo_us = env.obs_slo_us;
    oo.max_workers = std::max<uint32_t>(env.threads * 2, 128);
    // Static: the recorder must outlive every worker AND the atexit dump.
    // ParseEnv runs once per binary, before any worker starts.
    static obs::FlightRecorder recorder(oo);
    obs::SetRecorder(&recorder);
    if (!env.trace_file.empty()) {
      static std::string trace_path;
      trace_path = env.trace_file;
      std::atexit([] {
        obs::FlightRecorder* r = obs::Recorder();
        if (r != nullptr) obs::WriteChromeTrace(*r, trace_path.c_str());
      });
      obs::InstallSignalDump(trace_path);
    }
    if (env.prom_stream_ms > 0) {
      if (env.prom_file.empty()) {
        std::fprintf(stderr,
                     "warning: --prom-stream-ms needs --prom FILE; live "
                     "streaming disabled\n");
      } else {
        obs::PrometheusStreamer::Options so;
        so.path = env.prom_file;
        so.labels = "binary=\"" + env.binary + "\"";
        so.interval_ms = env.prom_stream_ms;
        // Static for the same lifetime reason as the recorder above; declared
        // after it, so it is destroyed (and stops its thread) first.
        static obs::PrometheusStreamer streamer(so, obs::Recorder());
        PromStreamer() = &streamer;
        streamer.Start();
      }
    }
    if (env.watchdog_ms > 0) {
      obs::WatchdogOptions wo;
      wo.stall_threshold_ms = env.watchdog_ms;
      static obs::StallWatchdog watchdog(wo);
      BenchWatchdog() = &watchdog;
      watchdog.Start();
    }
  }

  // Knob overrides apply to already-registered cells (the recorder's, the
  // watchdog's); knobs registered later by protocol constructors re-arm to
  // their own config — latest constructor wins, see KnobRegistry. SIGHUP
  // re-applies the file, drained by the watchdog thread when one runs.
  if (!env.knob_file.empty()) {
    const int applied = KnobRegistry::Instance().LoadFile(env.knob_file.c_str());
    if (applied < 0) {
      std::fprintf(stderr, "warning: cannot read --knob-file %s\n",
                   env.knob_file.c_str());
    } else {
      KnobRegistry::Instance().SetReloadFile(env.knob_file);
    }
  }

  if (env.http_port != 0) {
    obs::HttpServerOptions ho;
    ho.port = env.http_port;
    static obs::HttpServer server(ho);
    // Static: the providers' captures must stay valid for the server thread.
    static std::string labels = "binary=\"" + env.binary + "\"";
    static std::string binary_name = env.binary;
    server.SetMetricsProvider([] {
      // With a live streamer the scrape shares its cursors, so the body
      // carries the ring-derived rocc_stream_* series too. The streamer only
      // renders the txn families once it holds stats, so hand it the mid-run
      // worker-sink merge first (guarded: between runs the live merge is
      // empty and would clobber the accumulated end-of-run totals).
      if (PromStreamer() != nullptr) {
        if (LiveRunActive()) PromStreamer()->UpdateStats(CollectLiveStats());
        return PromStreamer()->CollectString();
      }
      return obs::PrometheusSnapshot(CollectLiveStats(), labels);
    });
    server.SetVarsProvider([] { return BuildVarsJson(binary_name); });
    if (server.Start()) {
      BenchHttpServer() = &server;
      std::fprintf(stderr, "[http] observability plane on 127.0.0.1:%u\n",
                   server.port());
    }
  }
  return env;
}

/// Accumulate a measured run into the binary's Prometheus snapshot and
/// rewrite `--prom FILE` (cumulative across runs, like a scraped process).
/// No-op without --prom.
inline void EmitProm(const BenchEnv& env, const TxnStats& stats) {
  if (env.prom_file.empty()) return;
  static TxnStats accumulated;
  accumulated.Merge(stats);
  const std::string labels = "binary=\"" + env.binary + "\"";
  if (PromStreamer() != nullptr) {
    // Streaming mode: the streamer owns the file; hand it the stats and let
    // one immediate collection fold in whatever the rings hold right now.
    PromStreamer()->UpdateStats(accumulated);
    PromStreamer()->CollectOnce();
    return;
  }
  if (!obs::WritePrometheusSnapshot(accumulated, labels,
                                    env.prom_file.c_str())) {
    std::fprintf(stderr, "warning: cannot write %s for Prometheus output\n",
                 env.prom_file.c_str());
  }
}

/// Print the table; when `--csv <file>` was given, also append the CSV block
/// to that file (appending keeps multiple tables from one binary together);
/// when `--json <file>` was given, add the table to the binary's JSON report
/// and rewrite the file.
inline void Emit(const BenchEnv& env, const ReportTable& table,
                 const std::string& title = "") {
  table.Print(env.csv);
  if (!env.json_file.empty()) {
    static JsonReport report(env.binary, env.Describe());
    report.AddTable(title.empty() ? env.binary : title, table);
    if (!report.WriteTo(env.json_file)) {
      std::fprintf(stderr, "warning: cannot write %s for JSON output\n",
                   env.json_file.c_str());
    }
  }
  if (env.csv_file.empty()) return;
  std::ofstream out(env.csv_file, std::ios::app);
  if (!out) {
    std::fprintf(stderr, "warning: cannot open %s for CSV output\n",
                 env.csv_file.c_str());
    return;
  }
  out << table.ToCsv();
}

/// Open a durability log for one measured run when `--log-dir` is set; every
/// run gets its own subdirectory so WALs of successive runs in one binary
/// never interleave. Returns nullptr (durability off) otherwise.
inline std::unique_ptr<LogManager> OpenRunLog(const BenchEnv& env,
                                              uint32_t num_threads) {
  if (env.log_dir.empty()) return nullptr;
  static int run_counter = 0;
  ::mkdir(env.log_dir.c_str(), 0755);  // parent; EEXIST is fine
  LogOptions lopts;
  lopts.log_dir = env.log_dir + "/run" + std::to_string(++run_counter);
  lopts.group_commit_us = env.group_commit_us;
  lopts.sync_ack = !env.no_durability;
  auto log = std::make_unique<LogManager>(lopts, num_threads);
  const Status st = log->Open();
  if (!st.ok()) {
    std::fprintf(stderr, "warning: durability disabled: %s\n",
                 st.ToString().c_str());
    return nullptr;
  }
  return log;
}

/// One YCSB measurement: loads (or reuses) the table and runs the protocol.
///
/// The YCSB hybrid workload never inserts or deletes, so one loaded Database
/// can be reused across protocol runs within a binary; pass a fresh one per
/// binary invocation.
class YcsbBench {
 public:
  YcsbBench(const BenchEnv& env, YcsbOptions opts) : env_(env), opts_(opts) {
    opts_.num_rows = env.rows;
    workload_ = std::make_unique<YcsbWorkload>(opts_);
    workload_->Load(&db_);
  }

  /// Re-parameterise the generator without reloading data (same row count).
  void Reconfigure(const YcsbOptions& opts) {
    YcsbOptions next = opts;
    next.num_rows = opts_.num_rows;
    next.payload_size = opts_.payload_size;
    const uint32_t table = workload_->table_id();
    opts_ = next;
    workload_ = std::make_unique<YcsbWorkload>(opts_);
    workload_->SetLoadedTable(table);
  }

  RunResult Run(const std::string& proto, uint32_t ranges_hint = 0,
                uint32_t ring_capacity = 4096, bool register_writes = true,
                uint32_t threads_override = 0) {
    auto cc = CreateProtocol(proto, &db_, *workload_,
                             threads_override == 0 ? env_.threads : threads_override,
                             ranges_hint, ring_capacity, register_writes);
    return RunWith(std::move(cc), threads_override);
  }

  /// Run a caller-built protocol instance (custom options / ablations).
  RunResult RunWith(std::unique_ptr<ConcurrencyControl> cc,
                    uint32_t threads_override = 0) {
    return RunWith(cc.get(), threads_override);
  }

  /// Pin the lock implementation for subsequent runs (threaded through
  /// RunOptions so the switch happens at the runner's safe point, before
  /// workers start). Used by the cas/optiql A/B; without this the
  /// process-global `--lock` selection stays in force.
  void PinLockImpl(sync::LockImpl impl) {
    pin_lock_impl_ = true;
    lock_impl_ = impl;
  }

  /// Non-owning variant: the caller keeps the protocol alive, e.g. to read
  /// range telemetry after the measured run.
  RunResult RunWith(ConcurrencyControl* cc, uint32_t threads_override = 0) {
    RunOptions run;
    run.num_threads = threads_override == 0 ? env_.threads : threads_override;
    run.txns_per_thread = env_.txns_per_thread;
    run.warmup_txns_per_thread = env_.warmup;
    run.set_lock_impl = pin_lock_impl_;
    run.lock_impl = lock_impl_;
    std::unique_ptr<LogManager> log = OpenRunLog(env_, run.num_threads);
    run.log = log.get();
    LiveRangeScope ranges(cc);  // /vars heatmap source for this run
    RunResult r = RunExperiment(cc, workload_.get(), run);
    if (log != nullptr) log->Stop();
    EmitProm(env_, r.stats);
    return r;
  }

  YcsbWorkload& workload() { return *workload_; }
  const YcsbOptions& options() const { return opts_; }
  Database* db() { return &db_; }

 private:
  BenchEnv env_;
  YcsbOptions opts_;
  Database db_;
  std::unique_ptr<YcsbWorkload> workload_;
  bool pin_lock_impl_ = false;
  sync::LockImpl lock_impl_ = sync::LockImpl::kCas;
};

/// One modified-TPC-C measurement; reloads the database per run so every
/// protocol starts from identical state.
inline RunResult RunTpcc(const BenchEnv& env, const TpccOptions& opts,
                         const std::string& proto, uint32_t threads,
                         uint32_t ranges_hint = 0, uint32_t ring_capacity = 4096) {
  Database db;
  TpccWorkload workload(opts);
  workload.Load(&db);
  auto cc = CreateProtocol(proto, &db, workload, threads, ranges_hint,
                           ring_capacity);
  RunOptions run;
  run.num_threads = threads;
  run.txns_per_thread = env.txns_per_thread;
  run.warmup_txns_per_thread = env.warmup;
  std::unique_ptr<LogManager> log = OpenRunLog(env, threads);
  run.log = log.get();
  LiveRangeScope ranges(cc.get());  // /vars heatmap source for this run
  RunResult r = RunExperiment(cc.get(), &workload, run);
  if (log != nullptr) log->Stop();
  EmitProm(env, r.stats);
  return r;
}

inline std::string F(double v, int p = 2) { return ReportTable::Fmt(v, p); }
inline std::string F(uint64_t v) { return ReportTable::Fmt(v); }

/// Loud give-up guard: at the default retry budgets the starvation-escape
/// escalation makes retry exhaustion impossible, so a nonzero give_ups count
/// means dropped transactions are silently skewing the reported throughput.
/// Accumulates across runs; call Failed() before exiting to pick main's
/// return code.
class GiveUpGuard {
 public:
  void Check(const RunResult& r, const std::string& label) {
    if (r.stats.give_ups == 0) return;
    failed_ = true;
    std::fprintf(stderr,
                 "ERROR: %s dropped %llu logical transactions (give_ups != 0); "
                 "throughput figures above under-report contention\n",
                 label.c_str(),
                 static_cast<unsigned long long>(r.stats.give_ups));
  }
  bool Failed() const { return failed_; }

 private:
  bool failed_ = false;
};

}  // namespace bench
}  // namespace rocc
