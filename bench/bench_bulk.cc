// Bulk-transaction scaling: throughput as the bulk write-set size grows from
// 64 to 4096 deferred updates per transaction, for every OCC-family scheme.
//
// The paper's composite workload (§IV) pairs short point transactions with
// bulk processing transactions that scan a key block and update 1k-10k
// records. This benchmark isolates how the transaction-local data structures
// and the validators scale with that write-set size W: quadratic own-write
// overlays or per-writer write-set walks show up here as a collapse of
// bulk_tps between W=256 and W=4096.
//
// Flags (besides the common set in bench_common.h):
//   --writes L     comma list of bulk write-set sizes   (default 64,256,1024,4096)
//   --mixes  L     comma list of bulk txn fractions     (default 0.0,0.1,0.5)
//                  (0.0 = pure point transactions: the small-write-set
//                  regression guard)
//   --schemes S    comma list from lrv,gwv,rocc,mvrcc   (default all)
//   --point-ops N  operations per point transaction     (default 8)
//   --adaptive     enable the RangeTuner on rocc/mvrcc runs; the reported
//                  rows gain nothing but the contention columns reflect the
//                  tuner (relief_splits, fewer escalations under skew)
//
// A bulk transaction scans a uniformly placed block of W keys (aggregating
// the payloads) and then updates every key in the block; a point transaction
// performs N Zipfian point reads/updates. Emit one table per mix so
// `--json BENCH_bulk.json` yields a machine-readable trajectory.

#include <algorithm>
#include <cstring>

#include "bench_common.h"

using namespace rocc;        // NOLINT
using namespace rocc::bench; // NOLINT

namespace {

class SumConsumer : public ScanConsumer {
 public:
  bool OnRecord(uint64_t key, const char* payload) override {
    (void)key;
    uint64_t v;
    std::memcpy(&v, payload, sizeof(v));
    sum_ += v;
    return true;
  }
  uint64_t sum() const { return sum_; }

 private:
  uint64_t sum_ = 0;
};

struct BulkOptions {
  uint64_t num_rows = 200'000;
  uint32_t payload_size = 64;
  double theta = 0.7;           // point-op skew, the paper's "low skew"
  uint32_t point_ops = 8;
  double point_read_fraction = 0.5;
  double bulk_fraction = 0.5;   // share of bulk transactions
  uint32_t bulk_writes = 1024;  // W: records scanned + updated per bulk txn
  uint32_t max_retries = 1000;
};

/// Composite workload: point transactions + block-structured bulk
/// transactions whose write set is exactly `bulk_writes` entries.
class BulkWorkload : public Workload {
 public:
  explicit BulkWorkload(BulkOptions options)
      : options_(options),
        zipf_(options.num_rows, options.theta),
        thread_bufs_(EpochManager::kMaxThreads) {}

  const char* name() const override { return "bulk-composite"; }

  void Load(Database* db) override {
    Schema schema({{"field", options_.payload_size, 0}});
    table_id_ = db->CreateTable("bulktable", std::move(schema));
    std::vector<char> payload(options_.payload_size, 0);
    for (uint64_t key = 0; key < options_.num_rows; key++) {
      std::memcpy(payload.data(), &key, sizeof(key));
      db->LoadRow(table_id_, key, payload.data());
    }
  }

  /// Rebind to an already-loaded table with new generator parameters.
  void Adopt(uint32_t table_id) { table_id_ = table_id; }
  uint32_t table_id() const { return table_id_; }

  std::vector<RangeConfig> RangeConfigs(uint32_t ranges_hint,
                                        uint32_t ring_capacity) const override {
    RangeConfig rc;
    rc.table_id = table_id_;
    rc.key_min = 0;
    rc.key_max = options_.num_rows;
    // Match the paper's ~610-key logical ranges (10M keys / 16384 ranges).
    rc.num_ranges =
        ranges_hint != 0
            ? ranges_hint
            : static_cast<uint32_t>(std::clamp<uint64_t>(
                  options_.num_rows / 610, 1, 1u << 20));
    rc.ring_capacity = ring_capacity;
    return {rc};
  }

  Status RunTxn(ConcurrencyControl* cc, uint32_t thread_id, Rng& rng) override {
    std::vector<char>& buf = thread_bufs_[thread_id];
    if (buf.size() < options_.payload_size) buf.resize(options_.payload_size);

    const bool is_bulk = rng.NextDouble() < options_.bulk_fraction;
    uint64_t block = 0;
    struct PointOp {
      bool is_write;
      uint64_t key;
    } point[64];
    uint32_t n_point = 0;
    if (is_bulk) {
      const uint64_t w = options_.bulk_writes;
      block = w >= options_.num_rows ? 0 : rng.Uniform(options_.num_rows - w);
    } else {
      n_point = std::min<uint32_t>(options_.point_ops, 64);
      for (uint32_t i = 0; i < n_point; i++) {
        point[i].is_write = rng.NextDouble() >= options_.point_read_fraction;
        point[i].key = zipf_.Next(rng);
      }
    }

    return RunWithRetries(
        cc, thread_id, is_bulk,
        [&]() -> Status {
          TxnDescriptor* t = cc->Begin(thread_id);
          t->is_scan_txn = is_bulk;
          if (is_bulk) {
            SumConsumer consumer;
            const uint64_t end = block + options_.bulk_writes;
            Status st = cc->Scan(t, table_id_, block, end, 0, &consumer);
            if (!st.ok()) {
              cc->Abort(t);
              return Status::Aborted();
            }
            for (uint64_t key = block; key < end; key++) {
              const uint64_t value = consumer.sum() + key;
              st = cc->Update(t, table_id_, key, &value, sizeof(value), 0);
              if (!st.ok()) {
                cc->Abort(t);
                return Status::Aborted();
              }
            }
          } else {
            for (uint32_t i = 0; i < n_point; i++) {
              Status st;
              if (point[i].is_write) {
                const uint64_t value = rng.Next();
                st = cc->Update(t, table_id_, point[i].key, &value, sizeof(value), 0);
              } else {
                st = cc->Read(t, table_id_, point[i].key, buf.data());
              }
              if (!st.ok()) {
                cc->Abort(t);
                return Status::Aborted();
              }
            }
          }
          return cc->Commit(t);
        },
        rng, options_.max_retries);
  }

 private:
  BulkOptions options_;
  ZipfianGenerator zipf_;
  uint32_t table_id_ = 0;
  std::vector<std::vector<char>> thread_bufs_;
};

}  // namespace

int main(int argc, char** argv) {
  BenchEnv env = ParseEnv(argc, argv);
  // Bulk transactions are orders of magnitude heavier than YCSB point txns;
  // default to a smaller per-thread count than the common quick scale.
  if (!env.cfg.Has("threads")) env.threads = 8;
  if (!env.cfg.Has("rows")) env.rows = 200'000;
  if (!env.cfg.Has("txns")) env.txns_per_thread = 32;
  if (!env.cfg.Has("warmup")) env.warmup = 4;
  PrintBanner("Bulk write-set scaling: throughput vs bulk write-set size",
              env.Describe());

  const auto writes = env.cfg.GetIntList("writes", {64, 256, 1024, 4096});
  const auto mixes = env.cfg.GetDoubleList("mixes", {0.0, 0.1, 0.5});
  std::vector<std::string> schemes;
  {
    const std::string list = env.cfg.GetString("schemes", "lrv,gwv,rocc,mvrcc");
    size_t pos = 0;
    while (pos < list.size()) {
      const size_t comma = list.find(',', pos);
      const size_t end = comma == std::string::npos ? list.size() : comma;
      if (end > pos) schemes.push_back(list.substr(pos, end - pos));
      pos = end + 1;
    }
  }

  BulkOptions base;
  base.num_rows = env.rows;
  base.point_ops = static_cast<uint32_t>(env.cfg.GetInt("point-ops", 8));
  const bool adaptive = env.cfg.GetBool("adaptive", false);

  // Load once; the workload never inserts or deletes, so the table can be
  // adopted by reconfigured generators across every sweep point.
  Database db;
  uint32_t table_id;
  {
    BulkWorkload loader(base);
    loader.Load(&db);
    table_id = loader.table_id();
  }

  GiveUpGuard guard;
  for (double mix : mixes) {
    std::vector<std::string> headers = {
        "bulk_writes", "mix", "scheme", "total_tps", "bulk_tps",
        "point_tps", "abort_rate", "bulk_abort_rate",
        "bulk_p50_ms", "bulk_p99_ms", "validated_txns_per_scan"};
    for (const std::string& h : AbortBreakdownHeaders()) headers.push_back(h);
    for (const std::string& h : ContentionHeaders()) headers.push_back(h);
    ReportTable table(std::move(headers));
    // Pure point mix: the write-set size never varies, one sweep point.
    const std::vector<int64_t> sweep =
        mix == 0.0 ? std::vector<int64_t>{static_cast<int64_t>(base.point_ops)}
                   : writes;
    for (int64_t w : sweep) {
      BulkOptions opts = base;
      opts.bulk_fraction = mix;
      opts.bulk_writes = static_cast<uint32_t>(w);
      BulkWorkload workload(opts);
      workload.Adopt(table_id);
      for (const std::string& scheme : schemes) {
        auto cc = CreateProtocol(scheme, &db, workload, env.threads,
                                 /*ranges_hint=*/0, /*ring_capacity=*/4096,
                                 /*rocc_register_writes=*/true, adaptive);
        RunOptions run;
        run.num_threads = env.threads;
        run.txns_per_thread = env.txns_per_thread;
        run.warmup_txns_per_thread = env.warmup;
        std::unique_ptr<LogManager> log = OpenRunLog(env, env.threads);
        run.log = log.get();
        const RunResult r = RunExperiment(cc.get(), &workload, run);
        if (log != nullptr) log->Stop();
        EmitProm(env, r.stats);
        const double bulk_tps = r.ScanThroughput();
        guard.Check(r, scheme + " @ mix=" + F(mix, 2) + " w=" +
                           F(static_cast<uint64_t>(w)));
        std::vector<std::string> row = {
            F(static_cast<uint64_t>(w)), F(mix, 2), scheme,
            F(r.Throughput(), 1), F(bulk_tps, 1),
            F(r.Throughput() - bulk_tps, 1),
            F(r.stats.AbortRate(), 4), F(r.stats.ScanAbortRate(), 4),
            F(static_cast<double>(r.stats.latency_scan.Percentile(50)) / 1e6, 3),
            F(static_cast<double>(r.stats.latency_scan.Percentile(99)) / 1e6, 3),
            F(r.ValidatedTxnsPerScan(), 1)};
        for (std::string& c : AbortBreakdownCells(r.stats)) row.push_back(std::move(c));
        for (std::string& c : ContentionCells(r.stats)) row.push_back(std::move(c));
        table.AddRow(std::move(row));
        // Extended latency summary (all/scan/durable percentiles + stddev,
        // plus the phase breakdown when --obs ran) at the heaviest sweep
        // point of each mix.
        if (w == sweep.back()) {
          std::printf("\nlatency summary (%s, mix=%s, W=%lld):\n",
                      scheme.c_str(), F(mix, 2).c_str(),
                      static_cast<long long>(w));
          Emit(env, LatencySummaryTable(r.stats),
               "latency_mix_" + F(mix, 2) + "_" + scheme);
        }
      }
    }
    Emit(env, table, "bulk_mix_" + F(mix, 2));
  }
  return guard.Failed() ? 1 : 0;
}
