// Component microbenchmarks (google-benchmark): the hot primitives whose
// costs drive the paper's analysis — TxnRing registration and window reads,
// Zipfian draws, B+Tree point gets and range scans, TID-word lock cycles,
// and ROCC predicate construction.

#include <benchmark/benchmark.h>

#include <cstring>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/zipfian.h"
#include "core/rocc.h"
#include "core/txn_ring.h"
#include "index/btree.h"
#include "index/hash_index.h"
#include "storage/database.h"

namespace rocc {
namespace {

void BM_RngNext(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.Next());
}
BENCHMARK(BM_RngNext);

void BM_ZipfianDraw(benchmark::State& state) {
  ZipfianGenerator gen(10'000'000, state.range(0) / 100.0);
  Rng rng(2);
  for (auto _ : state) benchmark::DoNotOptimize(gen.Next(rng));
}
BENCHMARK(BM_ZipfianDraw)->Arg(0)->Arg(70)->Arg(104);

void BM_TxnRingRegister(benchmark::State& state) {
  TxnRing ring(4096);
  TxnDescriptor desc;
  for (auto _ : state) benchmark::DoNotOptimize(ring.Register(&desc));
}
BENCHMARK(BM_TxnRingRegister);

void BM_TxnRingWindowRead(benchmark::State& state) {
  TxnRing ring(4096);
  TxnDescriptor desc;
  for (int i = 0; i < 2048; i++) ring.Register(&desc);
  const uint64_t window = static_cast<uint64_t>(state.range(0));
  for (auto _ : state) {
    const uint64_t v = ring.Version();
    for (uint64_t seq = v - window + 1; seq <= v; seq++) {
      benchmark::DoNotOptimize(ring.Get(seq));
    }
  }
  state.SetItemsProcessed(state.iterations() * window);
}
BENCHMARK(BM_TxnRingWindowRead)->Arg(1)->Arg(16)->Arg(256);

void BM_TidWordLockCycle(benchmark::State& state) {
  alignas(64) char mem[Row::AllocSize(8)];
  Row* row = Row::Init(mem, 0, 1, 8, true);
  uint64_t version = 2;
  for (auto _ : state) {
    row->TryLock();
    row->UnlockWithVersion(version++);
  }
}
BENCHMARK(BM_TidWordLockCycle);

class TreeFixture : public benchmark::Fixture {
 public:
  void SetUp(const ::benchmark::State& state) override {
    if (tree) return;
    tree = std::make_unique<BTree>();
    n = static_cast<uint64_t>(state.range(0));
    for (uint64_t k = 0; k < n; k++) {
      tree->Insert(k, reinterpret_cast<Row*>((k << 3) | 1));
    }
  }
  void TearDown(const ::benchmark::State&) override {}
  std::unique_ptr<BTree> tree;
  uint64_t n = 0;
};

BENCHMARK_DEFINE_F(TreeFixture, PointGet)(benchmark::State& state) {
  Rng rng(3);
  for (auto _ : state) benchmark::DoNotOptimize(tree->Get(rng.Uniform(n)));
}
BENCHMARK_REGISTER_F(TreeFixture, PointGet)->Arg(1 << 20);

BENCHMARK_DEFINE_F(TreeFixture, RangeScan100)(benchmark::State& state) {
  Rng rng(4);
  for (auto _ : state) {
    uint64_t sum = 0;
    const uint64_t start = rng.Uniform(n - 100);
    tree->ScanRange(start, start + 100, [&](uint64_t key, Row*) {
      sum += key;
      return true;
    });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK_REGISTER_F(TreeFixture, RangeScan100)->Arg(1 << 20);

void BM_HashIndexGet(benchmark::State& state) {
  HashIndex idx(1 << 20);
  for (uint64_t k = 0; k < (1 << 20); k++) {
    idx.Insert(k, reinterpret_cast<Row*>((k << 3) | 1));
  }
  Rng rng(5);
  for (auto _ : state) benchmark::DoNotOptimize(idx.Get(rng.Uniform(1 << 20)));
}
BENCHMARK(BM_HashIndexGet);

// Predicate construction + range validation on an otherwise idle engine:
// the pure CPU cost of ROCC's scan bookkeeping (§V-H overhead analysis).
void BM_RoccScanPredicates(benchmark::State& state) {
  static Database* db = [] {
    auto* d = new Database();
    const uint32_t t = d->CreateTable("t", Schema({{"v", 8, 0}}));
    for (uint64_t k = 0; k < 100'000; k++) d->LoadRow(t, k, &k);
    return d;
  }();
  RoccOptions opts;
  RangeConfig rc;
  rc.table_id = 0;
  rc.key_min = 0;
  rc.key_max = 100'000;
  rc.num_ranges = 164;  // ~610 keys per range
  opts.tables = {rc};
  Rocc cc(db, 1, std::move(opts));
  Rng rng(6);
  const uint64_t scan_len = static_cast<uint64_t>(state.range(0));
  for (auto _ : state) {
    TxnDescriptor* t = cc.Begin(0);
    cc.Scan(t, 0, rng.Uniform(100'000 - scan_len), 0, scan_len, nullptr);
    benchmark::DoNotOptimize(t->predicates.size());
    cc.Commit(t);
  }
  state.SetItemsProcessed(state.iterations() * scan_len);
}
BENCHMARK(BM_RoccScanPredicates)->Arg(100)->Arg(1000);

}  // namespace
}  // namespace rocc

BENCHMARK_MAIN();
