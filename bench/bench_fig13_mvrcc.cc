// Fig. 13 — Comparison of RV with MVRCC (Deuteronomy-style multi-version
// range concurrency control): (a) scan throughput and (b) abort rate of scan
// transactions across scan lengths.
//
// Paper setup: 16384 logical ranges for both, hybrid YCSB. Expected shape:
// RV ~51% faster at scan length 100 and ~12% at 500, converging past 1000
// (long scans cover whole ranges, where precision no longer matters);
// MVRCC's abort rate is consistently higher because boundary ranges are
// treated as fully scanned.

#include "bench_common.h"

using namespace rocc;        // NOLINT
using namespace rocc::bench; // NOLINT

int main(int argc, char** argv) {
  BenchEnv env = ParseEnv(argc, argv);
  PrintBanner("Fig. 13: RV vs MVRCC scan throughput and abort rate",
              env.Describe());

  YcsbOptions opts;
  opts.theta = 0.7;
  YcsbBench bench(env, opts);

  ReportTable table({"scan_len", "scheme", "scan_tps", "scan_abort_rate",
                     "val_txns_per_scan"});
  for (int64_t scan_len : env.cfg.GetIntList("scan_lens", {100, 500, 1000, 1500})) {
    YcsbOptions cur = bench.options();
    cur.scan_length = static_cast<uint64_t>(scan_len);
    bench.Reconfigure(cur);
    for (const char* scheme : {"rocc", "mvrcc"}) {
      const RunResult r = bench.Run(scheme);
      table.AddRow({F(static_cast<uint64_t>(scan_len)), scheme,
                    F(r.ScanThroughput(), 1), F(r.stats.ScanAbortRate(), 4),
                    F(r.ValidatedTxnsPerScan(), 2)});
    }
  }
  Emit(env, table);
  return 0;
}
