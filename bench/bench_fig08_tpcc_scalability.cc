// Fig. 8 — Modified TPC-C scalability with increasing cores; the scan
// length is 3000 customers (one whole district's worth) and the number of
// warehouses equals the number of threads, as in the paper.
//
// Expected shape: LRV stops scaling early (~8 threads) under the huge
// re-scan cost; GWV rises then declines past ~24 threads; RV peaks latest
// and highest. On one core, the validated-work columns carry the story.

#include "bench_common.h"

using namespace rocc;        // NOLINT
using namespace rocc::bench; // NOLINT

int main(int argc, char** argv) {
  BenchEnv env = ParseEnv(argc, argv);
  if (!env.cfg.Has("txns")) env.txns_per_thread = env.paper ? 2500 : 400;
  const uint32_t scan_len =
      static_cast<uint32_t>(env.cfg.GetInt("scan_len", env.paper ? 3000 : 1000));

  PrintBanner("Fig. 8: modified TPC-C scalability (scan length " +
                  std::to_string(scan_len) + ", warehouses = threads)",
              env.Describe());

  ReportTable table({"threads", "scheme", "tps", "scan_tps", "scan_abort_rate",
                     "val_txns_per_scan"});

  const auto thread_counts = env.cfg.GetIntList(
      "thread_list", env.paper ? std::vector<int64_t>{1, 4, 8, 16, 24, 32, 40}
                               : std::vector<int64_t>{1, 2, 4, 8});
  for (int64_t threads : thread_counts) {
    TpccOptions opts;
    opts.num_warehouses = static_cast<uint32_t>(threads);
    opts.bulk_scan_length = scan_len;
    opts.initial_orders_per_district = env.paper ? 100 : 30;
    for (const char* scheme : {"lrv", "gwv", "rocc"}) {
      const RunResult r =
          RunTpcc(env, opts, scheme, static_cast<uint32_t>(threads));
      table.AddRow({F(static_cast<uint64_t>(threads)), scheme,
                    F(r.Throughput(), 1), F(r.ScanThroughput(), 1),
                    F(r.stats.ScanAbortRate(), 4),
                    F(r.ValidatedTxnsPerScan(), 2)});
    }
  }
  Emit(env, table);
  return 0;
}
