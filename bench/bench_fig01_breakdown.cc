// Fig. 1 — Performance profile (execution-time breakdown) for Local Readset
// Validation and Global Writeset Validation under the hybrid YCSB workload.
//
// Paper setup: 10M rows, 90% update txns (5 updates) / 10% scan txns
// (4 updates + 1 scan), low skew (theta 0.7), scan length 100 (left plot)
// and 1000 (right plot). The execution time is split into read&write,
// validation, and abort. ROCC is printed as a third column for reference.

#include <cstdio>

#include "bench_common.h"

using namespace rocc;        // NOLINT
using namespace rocc::bench; // NOLINT

int main(int argc, char** argv) {
  BenchEnv env = ParseEnv(argc, argv);
  PrintBanner("Fig. 1: LRV vs GWV execution-time breakdown (hybrid YCSB)",
              env.Describe());

  YcsbOptions opts;
  opts.theta = 0.7;
  YcsbBench bench(env, opts);

  ReportTable table({"scan_len", "scheme", "read_write_s", "validation_s",
                     "abort_s", "total_s", "validation_pct", "abort_pct"});

  for (uint64_t scan_len : {100ULL, 1000ULL}) {
    YcsbOptions cur = bench.options();
    cur.scan_length = scan_len;
    bench.Reconfigure(cur);
    for (const char* scheme : {"lrv", "gwv", "rocc"}) {
      const RunResult r = bench.Run(scheme);
      const double rw = static_cast<double>(r.stats.read_write_ns) * 1e-9;
      const double val = static_cast<double>(r.stats.validation_ns) * 1e-9;
      const double ab = static_cast<double>(r.stats.abort_ns) * 1e-9;
      const double total = rw + val + ab;
      table.AddRow({F(scan_len), scheme, F(rw, 3), F(val, 3), F(ab, 3),
                    F(total, 3), F(total > 0 ? 100.0 * val / total : 0, 1),
                    F(total > 0 ? 100.0 * ab / total : 0, 1)});
    }
  }
  Emit(env, table);
  std::printf(
      "\nExpected shape (paper): GWV spends the dominant share of time in\n"
      "validation at scan length 100; LRV overtakes GWV in both read&write\n"
      "and validation time at scan length 1000.\n");
  return 0;
}
