// Fig. 9 — Impact of workload skew on scan transactions: (a) scan throughput
// and (b) the average number of transactions validated per scan, across
// no-skew / low / medium / high Zipfian settings (theta 0, 0.7, 0.88, 1.04).
//
// Paper setup: 40 threads, scan length 100. Expected shape: RV's advantage
// is largest at low skew (it filters most unrelated transactions), shrinks
// at medium skew, and the three schemes converge under high skew; RV's
// validated-transaction count grows with skew but stays below GWV's.

#include "bench_common.h"

using namespace rocc;        // NOLINT
using namespace rocc::bench; // NOLINT

int main(int argc, char** argv) {
  BenchEnv env = ParseEnv(argc, argv);
  PrintBanner("Fig. 9: scan throughput under skewed workloads (scan length 100)",
              env.Describe());

  YcsbOptions opts;
  opts.scan_length = 100;
  YcsbBench bench(env, opts);

  ReportTable table({"skew", "theta", "scheme", "scan_tps", "total_tps",
                     "scan_abort_rate", "val_txns_per_scan"});

  const struct {
    const char* label;
    double theta;
  } skews[] = {{"no", 0.0}, {"low", 0.7}, {"medium", 0.88}, {"high", 1.04}};

  for (const auto& skew : skews) {
    YcsbOptions cur = bench.options();
    cur.theta = skew.theta;
    bench.Reconfigure(cur);
    for (const char* scheme : {"lrv", "gwv", "rocc"}) {
      const RunResult r = bench.Run(scheme);
      table.AddRow({skew.label, F(skew.theta, 2), scheme,
                    F(r.ScanThroughput(), 1), F(r.Throughput(), 1),
                    F(r.stats.ScanAbortRate(), 4),
                    F(r.ValidatedTxnsPerScan(), 2)});
    }
  }
  Emit(env, table);
  return 0;
}
