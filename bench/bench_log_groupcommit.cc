// Durability cost: group-commit interval vs throughput and durable-ack
// latency (src/log/).
//
// Sweeps the flusher's batching interval on the hybrid YCSB workload under
// ROCC. Shorter intervals fsync smaller batches more often: durable-ack
// latency (begin -> fsynced) falls while the fsync rate rises; the
// in-memory commit path is untouched either way, so `tps` isolates the
// logging overhead and the `durable` columns isolate the ack lag. Two
// reference rows bracket the sweep: `async` appends records but acknowledges
// from memory, `off` runs without a log at all.
//
// Extra flags on top of bench_common.h:
//   --quick          small scale (8 workers, 100k rows) for CI smoke runs
//   --intervals LIST group-commit intervals in us (default 25,50,100,200,400,800)

#include <cstdlib>

#include "bench_common.h"

using namespace rocc;         // NOLINT
using namespace rocc::bench;  // NOLINT

int main(int argc, char** argv) {
  BenchEnv env = ParseEnv(argc, argv);
  const bool quick = env.cfg.GetBool("quick", false);
  if (quick) {
    if (!env.cfg.Has("threads")) env.threads = 8;
    if (!env.cfg.Has("rows")) env.rows = 100'000;
    if (!env.cfg.Has("txns")) env.txns_per_thread = 150;
    if (!env.cfg.Has("warmup")) env.warmup = 20;
  }
  PrintBanner("Group commit: interval vs throughput / durable-ack latency",
              env.Describe());

  std::string base = env.log_dir;
  if (base.empty()) {
    char tmpl[] = "/tmp/rocc-groupcommit-XXXXXX";
    const char* made = ::mkdtemp(tmpl);
    if (made == nullptr) {
      std::fprintf(stderr, "cannot create scratch log dir\n");
      return 1;
    }
    base = made;
  }

  // Per-row logs are opened by hand below; keep YcsbBench from opening its
  // own via --log-dir.
  BenchEnv load_env = env;
  load_env.log_dir.clear();
  YcsbOptions opts;
  opts.theta = 0.7;
  YcsbBench bench(load_env, opts);

  ReportTable table({"gc_interval_us", "ack", "tps", "p50_commit_us",
                     "p99_commit_us", "p50_durable_us", "p99_durable_us",
                     "avg_wait_us", "wal_mb", "records"});
  int run_id = 0;

  auto run_one = [&](uint32_t interval_us, bool logged, bool sync_ack,
                     const std::string& label) {
    std::unique_ptr<LogManager> log;
    if (logged) {
      LogOptions lo;
      lo.log_dir = base + "/gc" + std::to_string(++run_id);
      lo.group_commit_us = interval_us;
      lo.sync_ack = sync_ack;
      log = std::make_unique<LogManager>(lo, env.threads);
      const Status st = log->Open();
      if (!st.ok()) {
        std::fprintf(stderr, "open log failed: %s\n", st.ToString().c_str());
        std::exit(1);
      }
    }
    auto cc = CreateProtocol("rocc", bench.db(), bench.workload(), env.threads);
    RunOptions run;
    run.num_threads = env.threads;
    run.txns_per_thread = env.txns_per_thread;
    run.warmup_txns_per_thread = env.warmup;
    run.log = log.get();
    const RunResult r = RunExperiment(cc.get(), &bench.workload(), run);
    if (log != nullptr) log->Stop();

    const TxnStats& s = r.stats;
    const double avg_wait_us =
        s.durable_acks == 0 ? 0.0
                            : static_cast<double>(s.durable_wait_ns) /
                                  static_cast<double>(s.durable_acks) / 1e3;
    table.AddRow({logged ? F(static_cast<uint64_t>(interval_us)) : "-", label,
                  F(r.Throughput(), 0),
                  F(s.latency_all.Percentile(50) / 1e3, 1),
                  F(s.latency_all.Percentile(99) / 1e3, 1),
                  F(s.latency_durable.Percentile(50) / 1e3, 1),
                  F(s.latency_durable.Percentile(99) / 1e3, 1),
                  F(avg_wait_us, 1),
                  log != nullptr ? F(log->durable_bytes() / 1e6, 2) : "-",
                  log != nullptr ? F(log->records_logged()) : "-"});
  };

  std::vector<int64_t> intervals =
      env.cfg.GetIntList("intervals", {25, 50, 100, 200, 400, 800});
  for (const int64_t us : intervals) {
    run_one(static_cast<uint32_t>(us), /*logged=*/true, /*sync_ack=*/true, "sync");
  }
  run_one(200, /*logged=*/true, /*sync_ack=*/false, "async");
  run_one(0, /*logged=*/false, /*sync_ack=*/false, "off");

  Emit(env, table);
  std::printf(
      "\nExpected shape: p50_durable_us grows with gc_interval_us (acks wait\n"
      "out the batching window) while tps stays near the async/off rows.\n");
  return 0;
}
