// Flight-recorder overhead guard: the observability layer must be free when
// off and near-free when sampling.
//
// Five cells run the same hybrid-YCSB workload (interleaved within each
// repetition so ambient drift on a shared host cancels out of the paired
// deltas):
//
//   off       no recorder installed — every instrumentation site is one
//             predicted null-pointer branch
//   sample64  recorder installed, 1/64 txn sampling (the default)
//   full      recorder installed, every transaction traced
//   slo-capture-on    sampling OFF but --obs-slo-us armed at 200us: the cost
//             of the per-attempt SLO check + heartbeat stores alone (the
//             tail-latency outlier path, DESIGN.md §16.2); held to the same
//             budget as sample64
//   scrape-under-load 1/64 sampling plus the HTTP plane being scraped
//             (/metrics + /vars) every few ms from a client thread for the
//             whole cell — the "Prometheus is pointed at a live run" regime.
//             Informational: the scraper thread legitimately steals CPU.
//
// Reported overheads are the median of the per-rep PAIRED deltas against the
// off cell of the same rep. The binary exits nonzero when:
//
//   - the sample64 overhead exceeds --max-overhead (percent, default 2), or
//   - --baseline-tps REF is given and the off cell's median tps is more than
//     --baseline-tol percent (default 3) below REF — the pre-change parity
//     guard: REF is the median tps of the same workload built WITHOUT the
//     instrumentation in the tree.
//
// Extra flags: --reps N (default 15), --scheme S (default rocc),
// --full-ceiling P (informational ceiling for the full cell; default 0 = no
// assert, full tracing is allowed to cost what it costs).
//
// Cells are deliberately SHORT (500 txns/thread, ~1s) and repetitions many:
// on a shared host, ambient load bursts last seconds, so a long off cell and
// its paired sample64 cell see different ambient and the paired delta
// degenerates to the ambient swing. Short cells keep each off/sampled pair
// inside one burst; the median over many pairs then isolates recorder cost.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "bench_common.h"

using namespace rocc;        // NOLINT
using namespace rocc::bench; // NOLINT

namespace {

double Median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

struct Cell {
  const char* name;
  uint32_t sample_period;  // 1/N sampling; meaningless when !recorder
  uint32_t slo_us;         // tail-latency SLO knob for the cell (0 = off)
  bool recorder;           // install a FlightRecorder for this cell
  bool scrape;             // hammer the HTTP plane for the whole cell
};

/// Minimal blocking GET against the local observability plane; returns the
/// body or empty on any failure. Scraper-thread use only.
std::string HttpGet(uint16_t port, const char* target) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return std::string();
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  std::string out;
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
    char req[128];
    const int n = std::snprintf(req, sizeof(req),
                                "GET %s HTTP/1.1\r\nHost: l\r\n\r\n", target);
    if (::send(fd, req, static_cast<size_t>(n), 0) == n) {
      char buf[4096];
      ssize_t r;
      while ((r = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
        out.append(buf, static_cast<size_t>(r));
      }
    }
  }
  ::close(fd);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  BenchEnv env = ParseEnv(argc, argv);
  // Small fixed workload: the guard measures recorder cost, not protocol
  // scaling, and must finish in CI time at tight repetition counts.
  if (!env.cfg.Has("threads")) env.threads = 8;
  if (!env.cfg.Has("rows")) env.rows = 200'000;
  if (!env.cfg.Has("txns")) env.txns_per_thread = 500;
  if (!env.cfg.Has("warmup")) env.warmup = 50;
  const int reps = static_cast<int>(env.cfg.GetInt("reps", 15));
  const double max_overhead = env.cfg.GetDouble("max-overhead", 2.0);
  const double full_ceiling = env.cfg.GetDouble("full-ceiling", 0.0);
  const double baseline_tps = env.cfg.GetDouble("baseline-tps", 0.0);
  const double baseline_tol = env.cfg.GetDouble("baseline-tol", 3.0);
  const std::string scheme = env.cfg.GetString("scheme", "rocc");
  PrintBanner("Flight-recorder overhead: off vs 1/64-sampled vs full tracing",
              env.Describe());

  YcsbBench bench(env, YcsbOptions{});

  const Cell cells[] = {
      {"off", 0, 0, false, false},
      {"sample64", 64, 0, true, false},
      {"full", 1, 0, true, false},
      {"slo-capture-on", 0, 200, true, false},
      {"scrape-under-load", 64, 0, true, true},
  };
  constexpr size_t kNumCells = sizeof(cells) / sizeof(cells[0]);

  // One long-lived recorder per enabled cell: recorders must stay alive past
  // any worker that might still be inside an instrumentation site, and
  // re-allocating rings every rep would measure the allocator instead.
  // Sampling rate and SLO live in PROCESS-GLOBAL knob cells that every
  // recorder shares (the last constructor armed them), so each cell re-arms
  // both knobs right before its run.
  std::unique_ptr<obs::FlightRecorder> recorders[kNumCells];
  for (size_t c = 0; c < kNumCells; c++) {
    if (!cells[c].recorder) continue;
    obs::ObsOptions oo;
    oo.sample_period = cells[c].sample_period;
    oo.slo_us = cells[c].slo_us;
    oo.ring_capacity = env.obs_ring;
    oo.max_workers = std::max<uint32_t>(env.threads * 2, 128);
    recorders[c] = std::make_unique<obs::FlightRecorder>(oo);
  }

  // The scrape cell's observability plane: kernel-assigned port, /metrics
  // from the racy live-stats merge, /vars the full bench document.
  obs::HttpServerOptions ho;
  obs::HttpServer server(ho);
  server.SetMetricsProvider(
      [] { return obs::PrometheusSnapshot(CollectLiveStats(), ""); });
  server.SetVarsProvider([] { return BuildVarsJson("bench_obs_overhead"); });
  if (!server.Start()) {
    std::fprintf(stderr, "ERROR: cannot start the observability server\n");
    return 1;
  }

  uint64_t scrapes = 0;       // successful /metrics + /vars fetches
  uint64_t scrapes_live = 0;  // ... that observed a run in flight
  std::vector<double> tps[kNumCells];
  std::vector<double> paired_overhead[kNumCells];  // vs same-rep off cell
  for (int rep = 0; rep < reps; rep++) {
    double off_tps = 0.0;
    for (size_t c = 0; c < kNumCells; c++) {
      KnobRegistry::Instance().Set("obs_sample_period", cells[c].sample_period);
      KnobRegistry::Instance().Set("obs_slo_us", cells[c].slo_us);
      obs::SetRecorder(recorders[c].get());
      std::atomic<bool> stop_scraper{false};
      std::thread scraper;
      if (cells[c].scrape) {
        scraper = std::thread([&stop_scraper, &server, &scrapes,
                               &scrapes_live] {
          while (!stop_scraper.load(std::memory_order_relaxed)) {
            const std::string metrics = HttpGet(server.port(), "/metrics");
            const std::string vars = HttpGet(server.port(), "/vars");
            if (metrics.find("rocc_txn_commits_total") != std::string::npos &&
                vars.find("\"binary\"") != std::string::npos) {
              scrapes++;
              if (vars.find("\"live_run\":true") != std::string::npos) {
                scrapes_live++;
              }
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
          }
        });
      }
      const RunResult r = bench.Run(scheme);
      if (scraper.joinable()) {
        stop_scraper.store(true, std::memory_order_relaxed);
        scraper.join();
      }
      obs::SetRecorder(nullptr);
      const double t = r.Throughput();
      tps[c].push_back(t);
      if (c == 0) {
        off_tps = t;
      } else if (off_tps > 0) {
        paired_overhead[c].push_back((off_tps - t) / off_tps * 100.0);
      }
      if (!paired_overhead[c].empty() && c != 0) {
        std::printf("  [rep %d] %-17s tps=%.0f (paired overhead %.2f%%)\n",
                    rep, cells[c].name, t, paired_overhead[c].back());
      } else {
        std::printf("  [rep %d] %-17s tps=%.0f\n", rep, cells[c].name, t);
      }
    }
  }
  server.Stop();

  ReportTable table({"cell", "sample_period", "slo_us", "median_tps",
                     "min_tps", "max_tps", "overhead_pct", "events_recorded"});
  for (size_t c = 0; c < kNumCells; c++) {
    std::vector<double> sorted = tps[c];
    std::sort(sorted.begin(), sorted.end());
    table.AddRow(
        {cells[c].name, F(static_cast<uint64_t>(cells[c].sample_period)),
         F(static_cast<uint64_t>(cells[c].slo_us)), F(Median(tps[c]), 0),
         F(sorted.front(), 0), F(sorted.back(), 0),
         c == 0 ? "0" : F(Median(paired_overhead[c]), 2),
         F(recorders[c] ? recorders[c]->TotalEvents() : 0)});
  }
  Emit(env, table, "obs_overhead");
  std::printf("scrape-under-load: %llu scrapes, %llu mid-run\n",
              static_cast<unsigned long long>(scrapes),
              static_cast<unsigned long long>(scrapes_live));

  int rc = 0;
  const double sampled_overhead = Median(paired_overhead[1]);
  if (sampled_overhead > max_overhead) {
    std::fprintf(stderr,
                 "ERROR: 1/64-sampled tracing costs %.2f%% (budget %.2f%%)\n",
                 sampled_overhead, max_overhead);
    rc = 1;
  }
  const double full_overhead = Median(paired_overhead[2]);
  if (full_ceiling > 0 && full_overhead > full_ceiling) {
    std::fprintf(stderr, "ERROR: full tracing costs %.2f%% (ceiling %.2f%%)\n",
                 full_overhead, full_ceiling);
    rc = 1;
  }
  // The outlier path alone (sampling off, SLO armed) is held to the same
  // budget as default sampling: it is two relaxed loads and a compare per
  // attempt plus the heartbeat stores every recorder-on cell already pays.
  const double slo_overhead = Median(paired_overhead[3]);
  if (slo_overhead > max_overhead) {
    std::fprintf(stderr,
                 "ERROR: SLO outlier capture costs %.2f%% (budget %.2f%%)\n",
                 slo_overhead, max_overhead);
    rc = 1;
  }
  // The scrape cell is informational for throughput, but the plane must have
  // actually answered while workers were running.
  if (scrapes == 0 || scrapes_live == 0) {
    std::fprintf(stderr,
                 "ERROR: scrape-under-load cell never observed a live run "
                 "(%llu scrapes, %llu mid-run)\n",
                 static_cast<unsigned long long>(scrapes),
                 static_cast<unsigned long long>(scrapes_live));
    rc = 1;
  }
  if (baseline_tps > 0) {
    const double off_median = Median(tps[0]);
    const double delta = (baseline_tps - off_median) / baseline_tps * 100.0;
    std::printf("obs-off parity: median %.0f tps vs pre-change baseline %.0f "
                "(%+.2f%%)\n",
                off_median, baseline_tps, -delta);
    if (delta > baseline_tol) {
      std::fprintf(stderr,
                   "ERROR: obs-off runs %.2f%% below the pre-change baseline "
                   "(tolerance %.2f%%)\n",
                   delta, baseline_tol);
      rc = 1;
    }
  }
  if (rc == 0) std::printf("overhead budget OK\n");
  return rc;
}
