// Fig. 5 — Hybrid YCSB: (a) throughput of scan transactions and (b) average
// latency of scan transactions, as the scan length grows from 10 to 1500.
//
// Paper setup: 40 threads, 10M rows, low skew, 90%/10% mix. Expected shape:
// all schemes grow at first; LRV peaks around 300 keys and falls off; RV is
// best at long scans (~3x LRV, ~1.2x GWV at 1500) and within ~10% of LRV at
// very short scans (registration overhead).
//
// Two extra modes share this binary's YCSB scaffolding:
//
//   --sweep-ranges [LIST]  Fig. 11-style granularity curve: static ROCC with
//                          num_ranges swept over LIST (default 16..4096),
//                          the baseline any adaptive layout must match.
//   --ab                   static vs adaptive A/B on a high-skew composite
//                          cell (--ab-theta, default 0.95) plus a uniform
//                          control cell, with per-range telemetry for the
//                          adaptive runs. --ab-ring (default 32) and
//                          --ab-ranges (default 64) pick a coarse layout
//                          with small rings so the hot range's ring actually
//                          churns at quick scale; --ab-reps (default 3) runs
//                          alternating repetitions and reports both layouts
//                          from the rep with the median paired tps delta.
//   --lock-ab              cas vs optiql lock-implementation A/B on the same
//                          skew + uniform cells (fixed static layout, same
//                          priming/alternation/median-paired-delta protocol
//                          as --ab). Reports lock_fail and ring_lost abort
//                          counts per arm: under skew the queued optiql
//                          acquire should convert lock-fail aborts into
//                          short waits; on uniform both arms must stay at
//                          point-tps parity.

#include <algorithm>
#include <vector>

#include "bench_common.h"
#include "core/rocc.h"

using namespace rocc;        // NOLINT
using namespace rocc::bench; // NOLINT

namespace {

double PointThroughput(const RunResult& r) {
  return r.seconds > 0
             ? static_cast<double>(r.stats.commits - r.stats.scan_txn_commits) /
                   r.seconds
             : 0;
}

/// Column name for one abort cause, derived from the shared string table so
/// the header always matches the trace/Prometheus/report label for the cause.
std::string AbortHeader(AbortReason r) {
  return std::string("abort_") + AbortReasonName(r);
}

/// Fig. 11-style static-granularity baseline: same workload, ROCC only,
/// sweeping the number of equal-width ranges.
int SweepRanges(const BenchEnv& env) {
  PrintBanner("Fig. 11 companion: static ROCC range-granularity sweep",
              env.Describe());
  YcsbOptions opts;
  opts.theta = env.cfg.GetDouble("theta", 0.7);
  opts.scan_length = static_cast<uint64_t>(
      env.cfg.GetInt("scan_len", static_cast<int64_t>(opts.scan_length)));
  YcsbBench bench(env, opts);

  std::vector<std::string> headers = {
      "num_ranges", "range_keys", "scan_tps", "total_tps",
      AbortHeader(AbortReason::kRingLost),
      AbortHeader(AbortReason::kScanConflict)};
  for (const std::string& h : ContentionHeaders()) headers.push_back(h);
  ReportTable table(std::move(headers));

  GiveUpGuard guard;
  const uint32_t ring =
      static_cast<uint32_t>(env.cfg.GetInt("ring", 4096));
  const auto counts = env.cfg.GetIntList(
      "sweep-ranges", {16, 64, 256, 1024, 4096});
  for (int64_t n : counts) {
    if (n <= 0) continue;
    const RunResult r = bench.Run("rocc", static_cast<uint32_t>(n), ring);
    guard.Check(r, "rocc @ num_ranges=" + F(static_cast<uint64_t>(n)));
    std::vector<std::string> row = {
        F(static_cast<uint64_t>(n)),
        F(static_cast<uint64_t>(env.rows / static_cast<uint64_t>(n))),
        F(r.ScanThroughput(), 1), F(r.Throughput(), 1),
        F(r.stats.abort_ring_lost), F(r.stats.abort_scan_conflict)};
    for (std::string& c : ContentionCells(r.stats)) row.push_back(std::move(c));
    table.AddRow(std::move(row));
  }
  Emit(env, table, "range_sweep");
  return guard.Failed() ? 1 : 0;
}

/// Static vs adaptive A/B: a high-skew composite cell where the hot range's
/// ring churns, plus a uniform control cell that must stay at parity.
///
/// The static layout is deliberately coarse (--ab-ranges, default 64) with a
/// small ring (--ab-ring, default 64): under skew the hot range's ring then
/// actually wraps at quick scale, which is the regime the tuner exists for.
/// The adaptive side starts from the SAME layout and must earn its keep by
/// splitting.
int AdaptiveAb(const BenchEnv& env) {
  PrintBanner("Adaptive range tuning A/B: static vs adaptive ROCC",
              env.Describe());
  const double ab_theta = env.cfg.GetDouble("ab-theta", 0.95);
  const uint32_t ring = static_cast<uint32_t>(env.cfg.GetInt("ab-ring", 32));
  const uint32_t ranges =
      static_cast<uint32_t>(env.cfg.GetInt("ab-ranges", 64));
  const int reps = static_cast<int>(env.cfg.GetInt("ab-reps", 3));
  YcsbOptions opts;
  opts.theta = ab_theta;
  // Paper-composite scan placement: bulk blocks are uniform while point
  // updates stay Zipfian (§IV), so scans mostly read cold spans that share
  // coarse ranges with hot writers — the false-sharing regime adaptive
  // splitting exists to fix. Override with --ab-scan-theta.
  opts.scan_theta = env.cfg.GetDouble("ab-scan-theta", 0.0);
  opts.scan_length = static_cast<uint64_t>(
      env.cfg.GetInt("scan_len", static_cast<int64_t>(opts.scan_length)));
  YcsbBench bench(env, opts);


  std::vector<std::string> headers = {
      "cell",      "layout",   "total_tps",
      "point_tps", "scan_tps", "scan_abort_rate",
      AbortHeader(AbortReason::kRingLost),
      AbortHeader(AbortReason::kScanConflict)};
  for (const std::string& h : ContentionHeaders()) headers.push_back(h);
  for (const std::string& h : RangeSummaryHeaders()) headers.push_back(h);
  ReportTable table(std::move(headers));

  GiveUpGuard guard;
  struct Cell {
    const char* name;
    double theta;
  };
  for (const Cell& cell : {Cell{"skew", ab_theta}, Cell{"uniform", 0.0}}) {
    YcsbOptions cur = bench.options();
    cur.theta = cell.theta;
    bench.Reconfigure(cur);
    // One discarded priming run per cell: the first measured run otherwise
    // pays the allocator/page-fault warm-up for everyone and skews the A/B
    // by far more than the effect under measurement.
    {
      RoccOptions ropts;
      ropts.tables = bench.workload().RangeConfigs(ranges, ring);
      ropts.default_ring_capacity = ring;
      auto prime = std::make_unique<Rocc>(bench.db(), env.threads, ropts);
      (void)bench.RunWith(prime.get());
    }
    // Alternate static/adaptive over `reps` repetitions: single-core fiber
    // runs drift within one process, so back-to-back single runs would
    // systematically favor whichever layout runs second.
    struct Measured {
      RunResult r;
      RangeTelemetry tel;
    };
    std::vector<Measured> runs[2];  // [static, adaptive]
    for (int rep = 0; rep < reps; rep++) {
      for (const bool adaptive : {false, true}) {
        RoccOptions ropts;
        ropts.tables = bench.workload().RangeConfigs(ranges, ring);
        ropts.default_ring_capacity = ring;
        ropts.tuner.enabled = adaptive;
        auto cc = std::make_unique<Rocc>(bench.db(), env.threads, ropts);
        const RunResult r = bench.RunWith(cc.get());
        guard.Check(r, std::string(cell.name) + "/" +
                           (adaptive ? "adaptive" : "static") + " rep " +
                           F(static_cast<uint64_t>(rep)));
        std::printf("  [%s rep %d] %-8s total_tps=%.1f ring_lost=%llu "
                    "escalations=%llu splits=%llu\n",
                    cell.name, rep, adaptive ? "adaptive" : "static",
                    r.Throughput(),
                    static_cast<unsigned long long>(r.stats.abort_ring_lost),
                    static_cast<unsigned long long>(r.stats.escalations),
                    static_cast<unsigned long long>(
                        adaptive ? cc->tuner()->splits() : 0));
        runs[adaptive ? 1 : 0].push_back(
            {r, cc->range_manager(bench.workload().table_id())->Telemetry()});
      }
    }
    // Pick the rep whose paired delta (adaptive vs the static run adjacent in
    // time) is the median of all paired deltas, and report BOTH layouts from
    // that rep. Ambient host load drifts across the session, so comparing
    // each layout's independently-chosen median run contrasts different
    // moments; runs within one rep share conditions and cancel the drift.
    std::vector<size_t> order(runs[0].size());
    for (size_t i = 0; i < order.size(); i++) order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return runs[1][a].r.Throughput() - runs[0][a].r.Throughput() <
             runs[1][b].r.Throughput() - runs[0][b].r.Throughput();
    });
    const size_t median_rep = order[order.size() / 2];
    for (const bool adaptive : {false, true}) {
      const Measured& m = runs[adaptive ? 1 : 0][median_rep];
      const std::string label =
          std::string(cell.name) + "/" + (adaptive ? "adaptive" : "static");
      std::vector<std::string> row = {
          cell.name,
          adaptive ? "adaptive" : "static",
          F(m.r.Throughput(), 1),
          F(PointThroughput(m.r), 1),
          F(m.r.ScanThroughput(), 1),
          F(m.r.stats.ScanAbortRate(), 4),
          F(m.r.stats.abort_ring_lost),
          F(m.r.stats.abort_scan_conflict)};
      for (std::string& c : ContentionCells(m.r.stats)) row.push_back(std::move(c));
      for (std::string& c : RangeSummaryCells(m.tel)) row.push_back(std::move(c));
      table.AddRow(std::move(row));
      if (adaptive) {
        ReportTable tel_table = RangeTelemetryTable(m.tel);
        std::printf("\nper-range telemetry (%s median run, hottest first):\n",
                    label.c_str());
        Emit(env, tel_table, "ranges_" + std::string(cell.name));
      }
    }
  }
  std::printf("\n");
  Emit(env, table, "adaptive_ab");
  return guard.Failed() ? 1 : 0;
}

/// cas vs optiql lock-implementation A/B: same cells and pairing protocol as
/// AdaptiveAb. The optiql arm now runs the full queued-contention stack: the
/// MCS latch and row queue as before, plus combining registration on rings
/// the tuner promotes and telemetry-driven adaptive ring capacity
/// (DESIGN.md §15). The key-space grid stays frozen (slices_per_range=1, so
/// the tuner can never split or merge) — both arms keep the identical range
/// layout, and the delta is purely the queued lock paths plus ring
/// combining/capacity.
///
/// The interesting cell is skew: paced validators hold sorted row locks
/// across fiber yields, so competing validators burn their bounded CAS
/// retries against a holder that merely hasn't been rescheduled and abort
/// with lock_fail — and every retry re-registers ranges, feeding ring churn.
/// The optiql arm queues those validators (bounded, FIFO) instead, and its
/// hot ring grows past the observed validation window rather than bleeding
/// ring_lost aborts. Uniform is the control cell: near-zero contention,
/// point-tps must stay at parity.
int LockAb(const BenchEnv& env) {
  PrintBanner("Lock implementation A/B: cas vs optiql ROCC",
              env.Describe());
  const double ab_theta = env.cfg.GetDouble("ab-theta", 0.95);
  const uint32_t ring = static_cast<uint32_t>(env.cfg.GetInt("ab-ring", 32));
  const uint32_t ranges =
      static_cast<uint32_t>(env.cfg.GetInt("ab-ranges", 64));
  const int reps = static_cast<int>(env.cfg.GetInt("ab-reps", 3));
  // Per-pass registration delta that promotes a ring to combining in the
  // optiql arm (0 would disable promotion).
  const uint64_t combining_reg =
      static_cast<uint64_t>(env.cfg.GetInt("ab-combining-reg", 256));
  YcsbOptions opts;
  opts.theta = ab_theta;
  opts.scan_theta = env.cfg.GetDouble("ab-scan-theta", 0.0);
  opts.scan_length = static_cast<uint64_t>(
      env.cfg.GetInt("scan_len", static_cast<int64_t>(opts.scan_length)));
  YcsbBench bench(env, opts);

  std::vector<std::string> headers = {
      "cell",      "lock",     "total_tps",
      "point_tps", "scan_tps", "scan_abort_rate",
      AbortHeader(AbortReason::kLockFail),
      AbortHeader(AbortReason::kRingLost),
      "ring_resizes"};
  for (const std::string& h : ContentionHeaders()) headers.push_back(h);
  ReportTable table(std::move(headers));

  GiveUpGuard guard;
  struct Cell {
    const char* name;
    double theta;
  };
  for (const Cell& cell : {Cell{"skew", ab_theta}, Cell{"uniform", 0.0}}) {
    YcsbOptions cur = bench.options();
    cur.theta = cell.theta;
    bench.Reconfigure(cur);
    // Discarded priming run (allocator/page-fault warm-up), same rationale
    // as AdaptiveAb.
    {
      RoccOptions ropts;
      ropts.tables = bench.workload().RangeConfigs(ranges, ring);
      ropts.default_ring_capacity = ring;
      auto prime = std::make_unique<Rocc>(bench.db(), env.threads, ropts);
      (void)bench.RunWith(prime.get());
    }
    const sync::LockImpl impls[2] = {sync::LockImpl::kCas,
                                     sync::LockImpl::kOptiql};
    struct Measured {
      RunResult r;
      uint64_t resizes = 0;
    };
    std::vector<Measured> runs[2];  // [cas, optiql]
    for (int rep = 0; rep < reps; rep++) {
      for (int arm = 0; arm < 2; arm++) {
        RoccOptions ropts;
        ropts.tables = bench.workload().RangeConfigs(ranges, ring);
        ropts.default_ring_capacity = ring;
        if (impls[arm] != sync::LockImpl::kCas) {
          // Full queued stack for the optiql arm: the frozen grid
          // (slices_per_range=1) keeps the layout identical to the cas arm
          // while the tuner still drives ring growth/shrink and combining
          // promotion from the same piggybacked telemetry.
          ropts.tuner.enabled = true;
          ropts.tuner.slices_per_range = 1;
          ropts.tuner.adaptive_ring = true;
          ropts.tuner.combining_reg_threshold = combining_reg;
        }
        auto cc = std::make_unique<Rocc>(bench.db(), env.threads, ropts);
        bench.PinLockImpl(impls[arm]);
        const RunResult r = bench.RunWith(cc.get());
        guard.Check(r, std::string(cell.name) + "/" +
                           sync::LockImplName(impls[arm]) + " rep " +
                           F(static_cast<uint64_t>(rep)));
        const uint64_t resizes =
            cc->tuner() != nullptr ? cc->tuner()->resizes() : 0;
        std::printf("  [%s rep %d] %-6s total_tps=%.1f lock_fail=%llu "
                    "ring_lost=%llu resizes=%llu attempts=%.3f\n",
                    cell.name, rep, sync::LockImplName(impls[arm]),
                    r.Throughput(),
                    static_cast<unsigned long long>(r.stats.abort_lock_fail),
                    static_cast<unsigned long long>(r.stats.abort_ring_lost),
                    static_cast<unsigned long long>(resizes),
                    r.stats.attempts_per_commit.Mean());
        runs[arm].push_back({r, resizes});
      }
    }
    // Median paired-delta rep selection, as in AdaptiveAb: runs within a rep
    // share ambient-load conditions, so the pairing cancels host drift.
    std::vector<size_t> order(runs[0].size());
    for (size_t i = 0; i < order.size(); i++) order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return runs[1][a].r.Throughput() - runs[0][a].r.Throughput() <
             runs[1][b].r.Throughput() - runs[0][b].r.Throughput();
    });
    const size_t median_rep = order[order.size() / 2];
    for (int arm = 0; arm < 2; arm++) {
      const Measured& m = runs[arm][median_rep];
      std::vector<std::string> row = {
          cell.name,
          sync::LockImplName(impls[arm]),
          F(m.r.Throughput(), 1),
          F(PointThroughput(m.r), 1),
          F(m.r.ScanThroughput(), 1),
          F(m.r.stats.ScanAbortRate(), 4),
          F(m.r.stats.abort_lock_fail),
          F(m.r.stats.abort_ring_lost),
          F(m.resizes)};
      for (std::string& c : ContentionCells(m.r.stats)) row.push_back(std::move(c));
      table.AddRow(std::move(row));
    }
  }
  bench.PinLockImpl(sync::LockImpl::kCas);
  sync::SetLockImpl(sync::LockImpl::kCas);
  std::printf("\n");
  Emit(env, table, "lock_ab");
  return guard.Failed() ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  BenchEnv env = ParseEnv(argc, argv);
  if (env.cfg.Has("sweep-ranges")) return SweepRanges(env);
  if (env.cfg.Has("lock-ab")) return LockAb(env);
  if (env.cfg.Has("ab")) return AdaptiveAb(env);

  PrintBanner("Fig. 5: hybrid YCSB scan throughput & latency vs scan length",
              env.Describe());

  YcsbOptions opts;
  opts.theta = 0.7;
  YcsbBench bench(env, opts);

  std::vector<std::string> headers = {"scan_len", "scheme", "scan_tps",
                                      "scan_avg_lat_ms", "scan_p99_lat_ms",
                                      "total_tps", "scan_abort_rate"};
  for (const std::string& h : ContentionHeaders()) headers.push_back(h);
  ReportTable table(std::move(headers));

  GiveUpGuard guard;
  const auto scan_lens = env.cfg.GetIntList("scan_lens",
                                            {10, 100, 300, 500, 1000, 1500});
  for (int64_t scan_len : scan_lens) {
    YcsbOptions cur = bench.options();
    cur.scan_length = static_cast<uint64_t>(scan_len);
    bench.Reconfigure(cur);
    for (const char* scheme : {"lrv", "gwv", "rocc"}) {
      const RunResult r = bench.Run(scheme);
      guard.Check(r, std::string(scheme) + " @ scan_len=" +
                         F(static_cast<uint64_t>(scan_len)));
      std::vector<std::string> row = {
          F(static_cast<uint64_t>(scan_len)), scheme,
          F(r.ScanThroughput(), 1),
          F(r.stats.latency_scan.Mean() / 1e6, 3),
          F(static_cast<double>(r.stats.latency_scan.Percentile(99)) / 1e6, 3),
          F(r.Throughput(), 1), F(r.stats.ScanAbortRate(), 4)};
      for (std::string& c : ContentionCells(r.stats)) row.push_back(std::move(c));
      table.AddRow(std::move(row));
      // Extended latency summary (p50/p95/p99/p99.9/stddev, plus the phase
      // breakdown when --obs ran) for the heaviest scan length per scheme.
      if (scan_len == scan_lens.back()) {
        std::printf("\nlatency summary (%s, scan_len=%lld):\n", scheme,
                    static_cast<long long>(scan_len));
        Emit(env, LatencySummaryTable(r.stats), std::string("latency_") + scheme);
      }
    }
  }
  Emit(env, table);
  return guard.Failed() ? 1 : 0;
}
