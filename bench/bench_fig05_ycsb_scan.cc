// Fig. 5 — Hybrid YCSB: (a) throughput of scan transactions and (b) average
// latency of scan transactions, as the scan length grows from 10 to 1500.
//
// Paper setup: 40 threads, 10M rows, low skew, 90%/10% mix. Expected shape:
// all schemes grow at first; LRV peaks around 300 keys and falls off; RV is
// best at long scans (~3x LRV, ~1.2x GWV at 1500) and within ~10% of LRV at
// very short scans (registration overhead).

#include "bench_common.h"

using namespace rocc;        // NOLINT
using namespace rocc::bench; // NOLINT

int main(int argc, char** argv) {
  BenchEnv env = ParseEnv(argc, argv);
  PrintBanner("Fig. 5: hybrid YCSB scan throughput & latency vs scan length",
              env.Describe());

  YcsbOptions opts;
  opts.theta = 0.7;
  YcsbBench bench(env, opts);

  std::vector<std::string> headers = {"scan_len", "scheme", "scan_tps",
                                      "scan_avg_lat_ms", "scan_p99_lat_ms",
                                      "total_tps", "scan_abort_rate"};
  for (const std::string& h : ContentionHeaders()) headers.push_back(h);
  ReportTable table(std::move(headers));

  GiveUpGuard guard;
  const auto scan_lens = env.cfg.GetIntList("scan_lens",
                                            {10, 100, 300, 500, 1000, 1500});
  for (int64_t scan_len : scan_lens) {
    YcsbOptions cur = bench.options();
    cur.scan_length = static_cast<uint64_t>(scan_len);
    bench.Reconfigure(cur);
    for (const char* scheme : {"lrv", "gwv", "rocc"}) {
      const RunResult r = bench.Run(scheme);
      guard.Check(r, std::string(scheme) + " @ scan_len=" +
                         F(static_cast<uint64_t>(scan_len)));
      std::vector<std::string> row = {
          F(static_cast<uint64_t>(scan_len)), scheme,
          F(r.ScanThroughput(), 1),
          F(r.stats.latency_scan.Mean() / 1e6, 3),
          F(static_cast<double>(r.stats.latency_scan.Percentile(99)) / 1e6, 3),
          F(r.Throughput(), 1), F(r.stats.ScanAbortRate(), 4)};
      for (std::string& c : ContentionCells(r.stats)) row.push_back(std::move(c));
      table.AddRow(std::move(row));
    }
  }
  Emit(env, table);
  return guard.Failed() ? 1 : 0;
}
