// Fig. 6 — Modified TPC-C: (a) throughput and (b) average latency of the
// bulk (top-shopper reward) scan transactions as the customer scan length
// grows from 100 to 3000.
//
// Paper setup: 40 threads = 40 warehouses, mix 40% Payment / 40% NewOrder /
// 10% bulk / 4% OrderStatus / 4% Delivery / 2% StockLevel; bulk scans stay
// in the local warehouse; Payment crosses warehouses 15% of the time.
// Expected shape: same ordering as Fig. 5 — LRV degrades with long scans,
// RV best overall.

#include "bench_common.h"

using namespace rocc;        // NOLINT
using namespace rocc::bench; // NOLINT

int main(int argc, char** argv) {
  BenchEnv env = ParseEnv(argc, argv);
  // TPC-C loads ~100k rows per warehouse; quick mode uses fewer workers.
  if (!env.cfg.Has("threads") && !env.paper) env.threads = 8;
  if (!env.cfg.Has("txns")) env.txns_per_thread = env.paper ? 2500 : 400;
  const uint32_t warehouses = static_cast<uint32_t>(
      env.cfg.GetInt("warehouses", env.paper ? 40 : std::max(2u, env.threads / 2)));

  PrintBanner("Fig. 6: modified TPC-C bulk-scan throughput & latency vs scan length",
              env.Describe() + " warehouses=" + std::to_string(warehouses));

  ReportTable table({"scan_len", "scheme", "scan_tps", "scan_avg_lat_ms",
                     "total_tps", "scan_abort_rate"});

  const auto scan_lens =
      env.cfg.GetIntList("scan_lens", env.paper
                                          ? std::vector<int64_t>{100, 500, 1000, 2000, 3000}
                                          : std::vector<int64_t>{100, 500, 1000, 3000});
  for (int64_t scan_len : scan_lens) {
    TpccOptions opts;
    opts.num_warehouses = warehouses;
    opts.bulk_scan_length = static_cast<uint32_t>(scan_len);
    opts.initial_orders_per_district = env.paper ? 100 : 30;
    for (const char* scheme : {"lrv", "gwv", "rocc"}) {
      const RunResult r = RunTpcc(env, opts, scheme, env.threads);
      table.AddRow({F(static_cast<uint64_t>(scan_len)), scheme,
                    F(r.ScanThroughput(), 1),
                    F(r.stats.latency_scan.Mean() / 1e6, 3), F(r.Throughput(), 1),
                    F(r.stats.ScanAbortRate(), 4)});
    }
  }
  Emit(env, table);
  return 0;
}
