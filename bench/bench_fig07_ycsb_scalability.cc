// Fig. 7 — Hybrid YCSB scalability with increasing threads: (a) throughput,
// (b) abort rate of scan transactions, (c) average number of overlapping
// transactions validated per scan (the hardware-independent cost metric).
//
// Paper setup: threads 4..40, scan length 100. Expected shape: RV scales
// near-linearly and validates a small constant number of transactions; GWV
// validates hundreds and trails; LRV's growth slows past ~20 threads.
// (On a single-core container the throughput column cannot show parallel
// speedup; the validated-transaction and abort-rate columns carry Fig. 7's
// explanatory content.)

#include "bench_common.h"

using namespace rocc;        // NOLINT
using namespace rocc::bench; // NOLINT

int main(int argc, char** argv) {
  BenchEnv env = ParseEnv(argc, argv);
  PrintBanner("Fig. 7: hybrid YCSB scalability (scan length 100)",
              env.Describe());

  if (!env.cfg.Has("txns")) env.txns_per_thread = env.paper ? 2500 : 300;

  YcsbOptions opts;
  opts.theta = 0.7;
  opts.scan_length = 100;
  YcsbBench bench(env, opts);

  ReportTable table({"threads", "scheme", "tps", "scan_abort_rate",
                     "val_txns_per_scan", "val_recs_per_commit"});

  const auto thread_counts =
      env.cfg.GetIntList("thread_list", {4, 8, 16, 24, 32, 40});
  for (int64_t threads : thread_counts) {
    for (const char* scheme : {"lrv", "gwv", "rocc"}) {
      const RunResult r =
          bench.Run(scheme, 0, 4096, true, static_cast<uint32_t>(threads));
      table.AddRow({F(static_cast<uint64_t>(threads)), scheme,
                    F(r.Throughput(), 1), F(r.stats.ScanAbortRate(), 4),
                    F(r.ValidatedTxnsPerScan(), 2),
                    F(r.ValidatedRecordsPerCommit(), 2)});
    }
  }
  Emit(env, table);
  return 0;
}
