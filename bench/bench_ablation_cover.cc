// Ablation — the cover fast path (§II-B, Algorithm 1 steps 13-17).
//
// When a predicate fully covers a logical range, ROCC validates it with one
// version comparison instead of checking the writes of committed
// transactions one by one. This ablation disables that path (covered
// predicates fall back to per-write key checks — semantically identical, see
// tests/test_stress.cc) and measures what the fast path is worth across scan
// lengths: long scans cover more whole ranges, so the saving should grow
// with scan length and with the fraction of covered predicates.

#include "bench_common.h"

using namespace rocc;        // NOLINT
using namespace rocc::bench; // NOLINT

int main(int argc, char** argv) {
  BenchEnv env = ParseEnv(argc, argv);
  PrintBanner("Ablation: ROCC cover fast path on vs off", env.Describe());

  YcsbOptions opts;
  opts.theta = 0.7;
  YcsbBench bench(env, opts);

  ReportTable table({"scan_len", "variant", "scan_tps", "total_tps",
                     "scan_abort_rate", "validation_ms_total"});
  for (int64_t scan_len : env.cfg.GetIntList("scan_lens", {100, 500, 1500})) {
    YcsbOptions cur = bench.options();
    cur.scan_length = static_cast<uint64_t>(scan_len);
    bench.Reconfigure(cur);
    for (bool cover : {true, false}) {
      // CreateProtocol has no ablation hook for this switch; build directly.
      RoccOptions ropts;
      ropts.tables = bench.workload().RangeConfigs(0, 4096);
      ropts.cover_fast_path = cover;
      const RunResult r = bench.RunWith(
          std::make_unique<Rocc>(bench.db(), env.threads, std::move(ropts)));
      table.AddRow({F(static_cast<uint64_t>(scan_len)),
                    cover ? "cover-fast-path" : "per-write-checks",
                    F(r.ScanThroughput(), 1), F(r.Throughput(), 1),
                    F(r.stats.ScanAbortRate(), 4),
                    F(static_cast<double>(r.stats.validation_ns) / 1e6, 1)});
    }
  }
  Emit(env, table);
  return 0;
}
